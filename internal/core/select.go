package core

// Policy is an issue-selection priority scheme (§3.5).
type Policy uint8

const (
	// AgeBased selects the oldest operand-ready instructions, using the
	// 6-bit modulo-64 timestamp of §3.5.
	AgeBased Policy = iota
	// FaultyFirst selects instructions with the faulty bit set before
	// others, releasing their dependents sooner; ties and the no-faulty case
	// fall back to age.
	FaultyFirst
	// CriticalityDriven eagerly selects faulty instructions that the CDL
	// marked critical; if none exist it falls back to age (§3.5.1).
	CriticalityDriven
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case AgeBased:
		return "ABS"
	case FaultyFirst:
		return "FFS"
	case CriticalityDriven:
		return "CDS"
	default:
		return "policy?"
	}
}

// TimestampBits is the width of the issue-queue age counter: a 6-bit
// modulo-64 counter per §3.5.
const TimestampBits = 6

// TimestampMask masks a timestamp to its 6 bits.
const TimestampMask = (1 << TimestampBits) - 1

// Age returns the age of a timestamp relative to the current allocation
// counter, in modulo-64 arithmetic: larger means older. The comparison is
// unambiguous while at most 64 instructions are in flight in the issue
// queue, which a 32-entry queue guarantees.
func Age(ts, now uint8) uint8 {
	return (now - ts) & TimestampMask
}

// Candidate is the selection-visible state of an operand-ready issue-queue
// entry: the 4-bit fault/criticality field and timestamp of the SLE
// (§3.5.1), plus an opaque index the caller uses to map the decision back to
// its own structures.
type Candidate struct {
	// Index identifies the entry to the caller.
	Index int
	// Timestamp is the 6-bit allocation timestamp.
	Timestamp uint8
	// Faulty is the fault-prediction bit from the instruction meta-data.
	Faulty bool
	// Critical is the CDL-learned criticality bit (meaningful with Faulty).
	Critical bool
}

// Order sorts cands in selection-priority order (highest priority first) for
// policy p, given the current value of the issue queue's allocation counter
// (for modulo-64 age comparison). The sort is deterministic: ties break by
// age and then by Index.
//
// The comparison is a strict total order (priority, then age, then the unique
// Index), so the simple insertion sort below produces exactly the ordering
// sort.SliceStable used to — without the closure and interface-header
// allocations that put the standard sort on the heap profile of every
// simulated cycle. Candidate slices are issue-queue sized (tens of entries),
// where insertion sort is also the faster algorithm.
func Order(p Policy, cands []Candidate, now uint8) {
	for i := 1; i < len(cands); i++ {
		c := cands[i]
		j := i - 1
		for j >= 0 && orderBefore(p, c, cands[j], now) {
			cands[j+1] = cands[j]
			j--
		}
		cands[j+1] = c
	}
}

// orderBefore reports whether a outranks b under policy p.
func orderBefore(p Policy, a, b Candidate, now uint8) bool {
	if pa, pb := selPrio(p, a), selPrio(p, b); pa != pb {
		return pa > pb
	}
	if aa, ab := Age(a.Timestamp, now), Age(b.Timestamp, now); aa != ab {
		return aa > ab
	}
	return a.Index < b.Index
}

// selPrio is the policy's priority class: 1 selects ahead of 0.
func selPrio(p Policy, c Candidate) int {
	switch p {
	case FaultyFirst:
		if c.Faulty {
			return 1
		}
	case CriticalityDriven:
		if c.Faulty && c.Critical {
			return 1
		}
	}
	return 0
}

// CDL is the Criticality Detection Logic of §3.5.2: when an instruction
// broadcasts its result tag, the number of tag matches in the reservation
// station (its waiting dependents) is compared with the Criticality
// Threshold. The paper finds CT = 8 gives the best outcome.
type CDL struct {
	// CT is the criticality threshold: the minimum number of dependent
	// instructions present in the issue queue for the producer to be deemed
	// critical.
	CT int
}

// DefaultCDL returns the CDL with the paper's best threshold.
func DefaultCDL() CDL { return CDL{CT: 8} }

// Critical reports whether a broadcast with the given number of issue-queue
// tag matches marks the producer as critical.
func (c CDL) Critical(matches int) bool { return matches >= c.CT }
