package core

import (
	"testing"

	"tvsched/internal/fault"
)

func calmWindow(p SupervisorPolicy) WindowSample {
	return WindowSample{Cycles: p.Window}
}

func hotWindow(p SupervisorPolicy) WindowSample {
	return WindowSample{Cycles: p.Window,
		Unpredicted: uint64(float64(p.Window)*p.EscalateUnpred) + 1}
}

func TestSupervisorEscalationLadder(t *testing.T) {
	p := DefaultSupervisorPolicy()
	s := NewSupervisor(ABS, p)
	if s.Level() != 0 || s.Scheme() != ABS {
		t.Fatalf("fresh supervisor at level %d scheme %v", s.Level(), s.Scheme())
	}
	d, changed := s.Observe(hotWindow(p))
	if !changed || d.From != 0 || d.To != 1 || d.Reason != SupReasonUnpredRate {
		t.Fatalf("first hot window: %+v changed=%v", d, changed)
	}
	if s.Scheme() != EP {
		t.Fatalf("level 1 scheme %v, want EP", s.Scheme())
	}
	d, changed = s.Observe(hotWindow(p))
	if !changed || d.To != 2 {
		t.Fatalf("second hot window: %+v changed=%v", d, changed)
	}
	if s.Scheme() != Razor {
		t.Fatalf("level 2 scheme %v, want Razor", s.Scheme())
	}
	// Already at the top: another hot window changes nothing.
	if _, changed = s.Observe(hotWindow(p)); changed {
		t.Fatal("escalated past the top rung")
	}
	if s.Escalations() != 2 {
		t.Fatalf("escalations %d, want 2", s.Escalations())
	}
}

func TestSupervisorPrecisionMonitor(t *testing.T) {
	p := DefaultSupervisorPolicy()
	s := NewSupervisor(ABS, p)
	// Plenty of predictions, almost all wrong -> precision escalation.
	w := WindowSample{Cycles: p.Window, Predictions: 100, TruePredictions: 3}
	d, changed := s.Observe(w)
	if !changed || d.Reason != SupReasonPrecision {
		t.Fatalf("precision collapse not escalated: %+v changed=%v", d, changed)
	}
	// Too few predictions to judge: the monitor abstains.
	s2 := NewSupervisor(ABS, p)
	w = WindowSample{Cycles: p.Window, Predictions: p.MinPredictions - 1}
	if _, changed := s2.Observe(w); changed {
		t.Fatal("escalated on an abstaining precision monitor")
	}
}

func TestSupervisorHysteresis(t *testing.T) {
	p := DefaultSupervisorPolicy()
	s := NewSupervisor(ABS, p)
	s.Observe(hotWindow(p)) // -> level 1
	// One calm window short of the hysteresis: no de-escalation.
	for i := 0; i < p.QuietWindows-1; i++ {
		if _, changed := s.Observe(calmWindow(p)); changed {
			t.Fatalf("de-escalated after %d quiet windows, need %d", i+1, p.QuietWindows)
		}
	}
	// A hot window resets the quiet streak.
	s.Observe(hotWindow(p)) // -> level 2
	for i := 0; i < p.QuietWindows-1; i++ {
		s.Observe(calmWindow(p))
	}
	d, changed := s.Observe(calmWindow(p))
	if !changed || d.From != 2 || d.To != 1 || d.Reason != SupReasonQuiet {
		t.Fatalf("quiet de-escalation: %+v changed=%v", d, changed)
	}
	// Borderline window (above half the threshold): not calm, streak resets.
	mid := WindowSample{Cycles: p.Window,
		Unpredicted: uint64(float64(p.Window) * p.EscalateUnpred * 0.75)}
	for i := 0; i < 2*p.QuietWindows; i++ {
		if _, changed := s.Observe(mid); changed {
			t.Fatal("borderline windows should neither escalate nor de-escalate")
		}
	}
	if s.Level() != 1 {
		t.Fatalf("level %d after borderline windows, want 1", s.Level())
	}
}

func TestSupervisorWatchdogBudget(t *testing.T) {
	p := DefaultSupervisorPolicy()
	p.WatchdogBudget = 1
	s := NewSupervisor(ABS, p)
	d, ok := s.Watchdog()
	if !ok || d.From != 0 || d.To != NumSupLevels-1 || d.Reason != SupReasonWatchdog {
		t.Fatalf("first watchdog trip: %+v ok=%v", d, ok)
	}
	if s.WatchdogFires() != 1 || s.Escalations() != 0 {
		t.Fatalf("tallies after watchdog: fires=%d escalations=%d", s.WatchdogFires(), s.Escalations())
	}
	// At the top rung (and with budget spent) the watchdog declines.
	if _, ok := s.Watchdog(); ok {
		t.Fatal("watchdog fired at the top rung")
	}
	// Even with budget, a top-rung machine has nothing left to try.
	s2 := NewSupervisor(ABS, DefaultSupervisorPolicy())
	s2.Watchdog()
	if _, ok := s2.Watchdog(); ok {
		t.Fatal("watchdog self-looped at the top rung")
	}
}

func TestSupervisorRazorBaseLadder(t *testing.T) {
	s := NewSupervisor(Razor, DefaultSupervisorPolicy())
	for lvl := 0; lvl < NumSupLevels; lvl++ {
		if got := s.SchemeAt(lvl); got != Razor {
			t.Fatalf("Razor base at level %d runs %v", lvl, got)
		}
	}
}

func TestSupervisorReset(t *testing.T) {
	p := DefaultSupervisorPolicy()
	s := NewSupervisor(ABS, p)
	s.Observe(hotWindow(p))
	s.Watchdog()
	s.Reset()
	if s.Level() != 0 || s.Transitions() != 0 {
		t.Fatalf("after Reset: level=%d transitions=%d", s.Level(), s.Transitions())
	}
	// Budget is restored too.
	if _, ok := s.Watchdog(); !ok {
		t.Fatal("watchdog budget not restored by Reset")
	}
}

func TestSupervisorPolicyValidate(t *testing.T) {
	good := DefaultSupervisorPolicy()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*SupervisorPolicy){
		func(p *SupervisorPolicy) { p.Window = 0 },
		func(p *SupervisorPolicy) { p.EscalateUnpred = 0 },
		func(p *SupervisorPolicy) { p.EscalatePrecision = 1.5 },
		func(p *SupervisorPolicy) { p.QuietWindows = 0 },
		func(p *SupervisorPolicy) { p.WatchdogBudget = -1 },
		func(p *SupervisorPolicy) { p.VSafe = 2.0 },
	}
	for i, mutate := range bad {
		p := DefaultSupervisorPolicy()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("bad policy %d validated", i)
		}
	}
	if DefaultSupervisorPolicy().VSafe != fault.VNominal {
		t.Fatal("default VSafe is not the nominal supply")
	}
}
