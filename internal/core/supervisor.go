package core

import (
	"fmt"

	"tvsched/internal/fault"
)

// This file implements the graceful-degradation supervisor: a small runtime
// state machine that watches windowed health monitors (unpredicted-violation
// rate, TEP precision) and walks an escalation ladder when the environment
// leaves the regime the scheduler was designed for. The paper's schemes
// assume violations are predictable enough to schedule around (§3); under a
// transient hazard — a voltage droop, a violation storm, a dead delay sensor
// — that assumption breaks, and an unsupervised run degenerates into a
// replay cascade or loses forward progress entirely. The ladder trades
// throughput for safety one rung at a time:
//
//	level 0: the configured base scheme (normally a §3 scheduler, e.g. ABS)
//	level 1: EP — pad every predicted violation with a global stall; no
//	         scheduling cleverness left to be wrong
//	level 2: Razor-safe — replay-everything plus a VDD raise to the safe
//	         nominal supply, the "stop predicting, just survive" rung
//
// De-escalation is hysteretic: only after QuietWindows consecutive calm
// windows does the supervisor step back down one rung, which prevents
// oscillation when a hazard hovers near a threshold. A separate
// no-forward-progress watchdog jumps straight to the top rung (with a
// bounded per-run budget) where today's pipeline would abort with an error.
//
// The supervisor is a pure decision engine: it owns no pipeline state and
// performs no side effects. The pipeline feeds it WindowSamples, applies the
// returned decisions (scheme switch, VDD retarget), and emits a typed obs
// event per transition so the Auditor can reconcile supervisor activity
// against the counters.

// SupervisorPolicy holds the monitor thresholds and watchdog limits.
type SupervisorPolicy struct {
	// Window is the monitoring window length in cycles.
	Window uint64
	// EscalateUnpred is the unpredicted-violations-per-cycle rate at or
	// above which a window is hazardous. De-escalation requires the rate to
	// stay below half of this (hysteresis).
	EscalateUnpred float64
	// MinPredictions is the minimum number of TEP predictions in a window
	// before precision is judged at all; below it the precision monitor
	// abstains (a handful of predictions is not evidence).
	MinPredictions uint64
	// EscalatePrecision is the TEP precision (true predictions / all
	// predictions) below which a window is hazardous.
	EscalatePrecision float64
	// QuietWindows is the number of consecutive calm windows required
	// before stepping down one rung.
	QuietWindows int
	// WatchdogCycles is the commit-silence span after which the watchdog
	// fires. Zero disables the watchdog (the pipeline's hard error stands).
	WatchdogCycles uint64
	// WatchdogBudget bounds watchdog recoveries per run; once spent, the
	// pipeline falls back to the hard no-progress error.
	WatchdogBudget int
	// VSafe is the supply the top rung raises to (and the watchdog recovery
	// target). Defaults to fault.VNominal, where the fault model is benign
	// and replay is reliable under any survivable hazard.
	VSafe float64
}

// DefaultSupervisorPolicy returns the tuning used by the storm campaigns.
func DefaultSupervisorPolicy() SupervisorPolicy {
	return SupervisorPolicy{
		Window:            5000,
		EscalateUnpred:    0.04,
		MinPredictions:    32,
		EscalatePrecision: 0.25,
		QuietWindows:      3,
		WatchdogCycles:    20000,
		WatchdogBudget:    2,
		VSafe:             fault.VNominal,
	}
}

// Validate reports an error for nonsensical policies.
func (p *SupervisorPolicy) Validate() error {
	if p.Window == 0 {
		return fmt.Errorf("supervisor: zero window")
	}
	if p.EscalateUnpred <= 0 {
		return fmt.Errorf("supervisor: EscalateUnpred %v must be positive", p.EscalateUnpred)
	}
	if p.EscalatePrecision < 0 || p.EscalatePrecision > 1 {
		return fmt.Errorf("supervisor: EscalatePrecision %v outside [0,1]", p.EscalatePrecision)
	}
	if p.QuietWindows <= 0 {
		return fmt.Errorf("supervisor: QuietWindows %d must be positive", p.QuietWindows)
	}
	if p.WatchdogBudget < 0 {
		return fmt.Errorf("supervisor: negative WatchdogBudget %d", p.WatchdogBudget)
	}
	if p.VSafe < fault.VHighFault || p.VSafe > fault.VNominal {
		return fmt.Errorf("supervisor: VSafe %v outside [%v, %v]",
			p.VSafe, fault.VHighFault, fault.VNominal)
	}
	return nil
}

// SupReason says why the supervisor changed level. The numeric values are
// mirrored (and pinned by test) into obs event payloads, so reorder nothing.
type SupReason uint8

const (
	// SupReasonNone marks no transition.
	SupReasonNone SupReason = iota
	// SupReasonUnpredRate: the unpredicted-violation rate crossed the
	// escalation threshold.
	SupReasonUnpredRate
	// SupReasonPrecision: TEP precision collapsed below the threshold.
	SupReasonPrecision
	// SupReasonWatchdog: the no-forward-progress watchdog fired.
	SupReasonWatchdog
	// SupReasonQuiet: hysteresis de-escalation after consecutive calm
	// windows.
	SupReasonQuiet
	// NumSupReasons is the number of reasons.
	NumSupReasons
)

// String names the reason.
func (r SupReason) String() string {
	switch r {
	case SupReasonNone:
		return "none"
	case SupReasonUnpredRate:
		return "unpred-rate"
	case SupReasonPrecision:
		return "precision"
	case SupReasonWatchdog:
		return "watchdog"
	case SupReasonQuiet:
		return "quiet"
	default:
		return fmt.Sprintf("reason(%d)", uint8(r))
	}
}

// WindowSample is one monitoring window's health counters, supplied by the
// pipeline at each window boundary.
type WindowSample struct {
	// Cycles actually covered (the last window of a run may be short).
	Cycles uint64
	// Unpredicted counts violations that escaped prediction (replays).
	Unpredicted uint64
	// Predictions counts TEP predictions acted on (true + false positives).
	Predictions uint64
	// TruePredictions counts predictions whose violation was real.
	TruePredictions uint64
}

// SupDecision is the supervisor's verdict after a sample or watchdog trip.
type SupDecision struct {
	// From, To are the ladder levels before and after.
	From, To int
	// Reason says which monitor drove the transition.
	Reason SupReason
}

// NumSupLevels is the height of the escalation ladder.
const NumSupLevels = 3

// Supervisor walks the escalation ladder. Not safe for concurrent use; each
// pipeline owns one.
type Supervisor struct {
	policy SupervisorPolicy
	base   Scheme
	level  int
	quiet  int

	watchdogSpent int

	// Transition tallies, reconciled by the obs Auditor.
	escalations   uint64
	deescalations uint64
	watchdogFires uint64
}

// NewSupervisor builds a supervisor over the given base scheme. The policy
// must have been validated by the caller (the pipeline config path does).
func NewSupervisor(base Scheme, policy SupervisorPolicy) *Supervisor {
	return &Supervisor{policy: policy, base: base}
}

// Policy returns the active policy.
func (s *Supervisor) Policy() SupervisorPolicy { return s.policy }

// Level returns the current ladder level.
func (s *Supervisor) Level() int { return s.level }

// SchemeAt maps a ladder level to the handling scheme it runs.
func (s *Supervisor) SchemeAt(level int) Scheme {
	switch level {
	case 0:
		return s.base
	case 1:
		if s.base == Razor {
			// Escalating Razor into EP would *add* prediction dependence;
			// Razor's ladder only has the VDD rung.
			return Razor
		}
		return EP
	default:
		return Razor
	}
}

// Scheme returns the scheme the current level runs.
func (s *Supervisor) Scheme() Scheme { return s.SchemeAt(s.level) }

// Escalations, Deescalations and WatchdogFires report transition tallies;
// the three partition the level changes, so Transitions is their sum.
func (s *Supervisor) Escalations() uint64   { return s.escalations }
func (s *Supervisor) Deescalations() uint64 { return s.deescalations }
func (s *Supervisor) WatchdogFires() uint64 { return s.watchdogFires }

// Transitions returns the total number of level changes so far.
func (s *Supervisor) Transitions() uint64 {
	return s.escalations + s.deescalations + s.watchdogFires
}

// hazardous classifies a window against the escalation thresholds, returning
// the triggering reason (SupReasonNone when healthy).
func (s *Supervisor) hazardous(w WindowSample) SupReason {
	if w.Cycles == 0 {
		return SupReasonNone
	}
	if float64(w.Unpredicted)/float64(w.Cycles) >= s.policy.EscalateUnpred {
		return SupReasonUnpredRate
	}
	if w.Predictions >= s.policy.MinPredictions {
		if float64(w.TruePredictions)/float64(w.Predictions) < s.policy.EscalatePrecision {
			return SupReasonPrecision
		}
	}
	return SupReasonNone
}

// calm reports whether a window is quiet enough to count toward
// de-escalation: the unpredicted rate must sit below half the escalation
// threshold (hysteresis) and precision must be healthy.
func (s *Supervisor) calm(w WindowSample) bool {
	if w.Cycles == 0 {
		return false
	}
	if float64(w.Unpredicted)/float64(w.Cycles) >= s.policy.EscalateUnpred/2 {
		return false
	}
	if w.Predictions >= s.policy.MinPredictions &&
		float64(w.TruePredictions)/float64(w.Predictions) < s.policy.EscalatePrecision {
		return false
	}
	return true
}

// Observe feeds one window's counters through the monitors. It returns the
// transition and true when the level changed.
func (s *Supervisor) Observe(w WindowSample) (SupDecision, bool) {
	if reason := s.hazardous(w); reason != SupReasonNone {
		s.quiet = 0
		if s.level < NumSupLevels-1 {
			d := SupDecision{From: s.level, To: s.level + 1, Reason: reason}
			s.level++
			s.escalations++
			return d, true
		}
		return SupDecision{From: s.level, To: s.level, Reason: SupReasonNone}, false
	}
	if s.level > 0 && s.calm(w) {
		s.quiet++
		if s.quiet >= s.policy.QuietWindows {
			d := SupDecision{From: s.level, To: s.level - 1, Reason: SupReasonQuiet}
			s.level--
			s.quiet = 0
			s.deescalations++
			return d, true
		}
	} else if !s.calm(w) {
		s.quiet = 0
	}
	return SupDecision{From: s.level, To: s.level, Reason: SupReasonNone}, false
}

// Watchdog handles a no-forward-progress trip: jump straight to the top
// rung (scheme Razor, VDD at VSafe) if budget remains. ok=false means the
// supervisor has nothing left to try — the budget is spent, or the machine
// is already on the top rung and still stuck — and the pipeline should fall
// back to its hard error. Watchdog jumps tally in WatchdogFires, not
// Escalations, so the three tallies partition the transitions.
func (s *Supervisor) Watchdog() (SupDecision, bool) {
	if s.watchdogSpent >= s.policy.WatchdogBudget || s.level >= NumSupLevels-1 {
		return SupDecision{From: s.level, To: s.level, Reason: SupReasonNone}, false
	}
	s.watchdogSpent++
	s.watchdogFires++
	s.quiet = 0
	d := SupDecision{From: s.level, To: NumSupLevels - 1, Reason: SupReasonWatchdog}
	s.level = NumSupLevels - 1
	return d, true
}

// Reset returns the supervisor to level 0 with cleared tallies; the pipeline
// calls it when warmup resets statistics so supervision history does not
// leak across the measurement boundary.
func (s *Supervisor) Reset() {
	s.level = 0
	s.quiet = 0
	s.watchdogSpent = 0
	s.escalations = 0
	s.deescalations = 0
	s.watchdogFires = 0
}
