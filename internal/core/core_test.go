package core

import (
	"errors"
	"testing"
	"testing/quick"

	"tvsched/internal/isa"
)

func TestSchemeStringsAndParse(t *testing.T) {
	for _, s := range Schemes() {
		parsed, err := ParseScheme(s.String())
		if err != nil || parsed != s {
			t.Errorf("round trip failed for %v: %v %v", s, parsed, err)
		}
	}
	if _, err := ParseScheme("bogus"); err == nil {
		t.Error("parsed bogus scheme")
	}
}

func TestSchemeTextRoundTrip(t *testing.T) {
	for _, s := range Schemes() {
		text, err := s.MarshalText()
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		var back Scheme
		if err := back.UnmarshalText(text); err != nil || back != s {
			t.Errorf("round trip %v -> %q -> %v (%v)", s, text, back, err)
		}
	}
	if _, err := NumSchemes.MarshalText(); !errors.Is(err, ErrUnknownScheme) {
		t.Errorf("out-of-range marshal: %v", err)
	}
	var s Scheme
	if err := s.UnmarshalText([]byte("bogus")); !errors.Is(err, ErrUnknownScheme) {
		t.Errorf("bogus unmarshal not matchable: %v", err)
	}
}

func TestSchemeProperties(t *testing.T) {
	if Razor.UsesTEP() {
		t.Error("Razor must not use the TEP")
	}
	for _, s := range []Scheme{EP, ABS, FFS, CDS} {
		if !s.UsesTEP() {
			t.Errorf("%v must use the TEP", s)
		}
	}
	for _, s := range Proposed() {
		if !s.Confined() {
			t.Errorf("%v must confine penalties", s)
		}
	}
	if EP.Confined() || Razor.Confined() {
		t.Error("baselines must not be confined")
	}
}

func TestSchemePolicies(t *testing.T) {
	// §4.2: fault-free and EP use age-based selection.
	if EP.Policy() != AgeBased || Razor.Policy() != AgeBased || ABS.Policy() != AgeBased {
		t.Error("Razor/EP/ABS must use age-based selection")
	}
	if FFS.Policy() != FaultyFirst {
		t.Error("FFS policy")
	}
	if CDS.Policy() != CriticalityDriven {
		t.Error("CDS policy")
	}
}

func TestRespondDecisionTable(t *testing.T) {
	// Unpredicted faults replay everywhere, in every scheme.
	for _, s := range Schemes() {
		for st := isa.Fetch; st < isa.NumStages; st++ {
			if got := Respond(s, false, st); got != ActReplay {
				t.Errorf("Respond(%v, unpredicted, %v) = %v, want replay", s, st, got)
			}
		}
	}
	// Razor replays even when the fault would have been predictable.
	if got := Respond(Razor, true, isa.Issue); got != ActReplay {
		t.Errorf("Razor predicted issue fault => %v", got)
	}
	// Fetch/decode predicted faults replay (§2.2).
	for _, st := range []isa.Stage{isa.Fetch, isa.Decode} {
		if got := Respond(ABS, true, st); got != ActReplay {
			t.Errorf("ABS predicted %v fault => %v, want replay", st, got)
		}
	}
	// In-order engine: stall-based handling.
	for _, st := range []isa.Stage{isa.Rename, isa.Dispatch, isa.Retire} {
		if got := Respond(ABS, true, st); got != ActFrontStall {
			t.Errorf("ABS predicted %v fault => %v, want front-stall", st, got)
		}
		if got := Respond(EP, true, st); got != ActGlobalStall {
			t.Errorf("EP predicted %v fault => %v, want global stall", st, got)
		}
	}
	// OoO engine: EP stalls globally, proposed schemes confine.
	for st := isa.Issue; st <= isa.Writeback; st++ {
		if got := Respond(EP, true, st); got != ActGlobalStall {
			t.Errorf("EP predicted %v => %v", st, got)
		}
		for _, s := range Proposed() {
			if got := Respond(s, true, st); got != ActConfined {
				t.Errorf("%v predicted %v => %v, want confined", s, st, got)
			}
		}
	}
}

func TestActionStrings(t *testing.T) {
	names := map[Action]string{
		ActNone: "none", ActConfined: "confined", ActGlobalStall: "global-stall",
		ActFrontStall: "front-stall", ActReplay: "replay",
	}
	for a, want := range names {
		if a.String() != want {
			t.Errorf("%d.String() = %q", a, a.String())
		}
	}
}

func TestAgeModulo(t *testing.T) {
	if Age(0, 0) != 0 {
		t.Error("same timestamp age 0")
	}
	if Age(0, 5) != 5 {
		t.Error("simple age")
	}
	// Wraparound: allocated at 60, now counter has wrapped to 3 => age 7.
	if Age(60, 3) != 7 {
		t.Errorf("wrap age = %d, want 7", Age(60, 3))
	}
}

func cands(ts []uint8, faulty, critical []bool) []Candidate {
	out := make([]Candidate, len(ts))
	for i := range ts {
		out[i] = Candidate{Index: i, Timestamp: ts[i]}
		if faulty != nil {
			out[i].Faulty = faulty[i]
		}
		if critical != nil {
			out[i].Critical = critical[i]
		}
	}
	return out
}

func TestABSOrdersByAge(t *testing.T) {
	c := cands([]uint8{5, 2, 9, 0}, nil, nil)
	Order(AgeBased, c, 10)
	want := []int{3, 1, 0, 2} // ages: 10, 8, 5, 1 -> oldest first
	for i, w := range want {
		if c[i].Index != w {
			t.Fatalf("ABS order %v", c)
		}
	}
}

func TestABSWraparound(t *testing.T) {
	// Timestamps allocated just before wrap are older than ones after.
	c := cands([]uint8{62, 1}, nil, nil)
	Order(AgeBased, c, 3)
	if c[0].Index != 0 {
		t.Fatalf("wraparound age ordering broken: %v", c)
	}
}

func TestFFSPrefersFaulty(t *testing.T) {
	c := cands([]uint8{1, 5, 3}, []bool{false, true, false}, nil)
	Order(FaultyFirst, c, 10)
	if c[0].Index != 1 {
		t.Fatalf("FFS did not pick faulty first: %v", c)
	}
	// Remaining by age: ts=1 (age 9) before ts=3 (age 7).
	if c[1].Index != 0 || c[2].Index != 2 {
		t.Fatalf("FFS tail not age ordered: %v", c)
	}
}

func TestFFSFallsBackToAge(t *testing.T) {
	c := cands([]uint8{4, 1}, []bool{false, false}, nil)
	Order(FaultyFirst, c, 8)
	if c[0].Index != 1 {
		t.Fatalf("FFS without faulty must be age based: %v", c)
	}
}

func TestCDSPrefersFaultyCritical(t *testing.T) {
	// A faulty-but-not-critical entry must NOT be promoted by CDS.
	c := cands([]uint8{1, 5, 6}, []bool{false, true, true}, []bool{false, false, true})
	Order(CriticalityDriven, c, 10)
	if c[0].Index != 2 {
		t.Fatalf("CDS did not pick faulty+critical first: %v", c)
	}
	// The rest by age: ts=1(age 9) then ts=5(age 5).
	if c[1].Index != 0 || c[2].Index != 1 {
		t.Fatalf("CDS tail not age ordered: %v", c)
	}
}

func TestCDSCriticalAloneNotPromoted(t *testing.T) {
	c := cands([]uint8{1, 9}, []bool{false, false}, []bool{false, true})
	Order(CriticalityDriven, c, 10)
	if c[0].Index != 0 {
		t.Fatalf("non-faulty critical entry must not be promoted: %v", c)
	}
}

func TestOrderDeterministicTies(t *testing.T) {
	a := cands([]uint8{3, 3, 3}, nil, nil)
	b := cands([]uint8{3, 3, 3}, nil, nil)
	Order(AgeBased, a, 5)
	Order(AgeBased, b, 5)
	for i := range a {
		if a[i].Index != b[i].Index {
			t.Fatal("tie breaking not deterministic")
		}
	}
}

// Property: Order is a permutation and, for ABS, ages are non-increasing.
func TestOrderPermutationProperty(t *testing.T) {
	f := func(tsRaw []uint8, now uint8) bool {
		if len(tsRaw) > 32 {
			tsRaw = tsRaw[:32]
		}
		c := make([]Candidate, len(tsRaw))
		for i, ts := range tsRaw {
			c[i] = Candidate{Index: i, Timestamp: ts & TimestampMask}
		}
		Order(AgeBased, c, now&TimestampMask)
		seen := make(map[int]bool)
		for i := range c {
			if seen[c[i].Index] {
				return false
			}
			seen[c[i].Index] = true
			if i > 0 && Age(c[i-1].Timestamp, now&TimestampMask) < Age(c[i].Timestamp, now&TimestampMask) {
				return false
			}
		}
		return len(seen) == len(tsRaw)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCDLThreshold(t *testing.T) {
	cdl := DefaultCDL()
	if cdl.CT != 8 {
		t.Fatalf("paper's best CT is 8, got %d", cdl.CT)
	}
	if cdl.Critical(7) {
		t.Error("7 matches must not be critical at CT=8")
	}
	if !cdl.Critical(8) || !cdl.Critical(20) {
		t.Error("8+ matches must be critical")
	}
}

func TestFUSRBasic(t *testing.T) {
	f := NewFUSR(2, 1, 1)
	if f.NumLanes() != 4 {
		t.Fatalf("lanes = %d", f.NumLanes())
	}
	// Two simple lanes available at cycle 0.
	l0 := f.Available(FUSimple, 0)
	if l0 < 0 {
		t.Fatal("no simple lane")
	}
	f.Issue(l0, 0, 1, true, false)
	l1 := f.Available(FUSimple, 0)
	if l1 < 0 || l1 == l0 {
		t.Fatalf("second simple lane: %d", l1)
	}
	f.Issue(l1, 0, 1, true, false)
	if f.Available(FUSimple, 0) >= 0 {
		t.Fatal("third simple issue in one cycle")
	}
	// Both free again next cycle (pipelined single-cycle).
	if f.Available(FUSimple, 1) < 0 {
		t.Fatal("simple lane not free next cycle")
	}
}

func TestFUSRFaultyFreezesSlot(t *testing.T) {
	// §3.3.3 single-cycle: FUSR off for one cycle behind a faulty inst.
	f := NewFUSR(1, 0, 0)
	f.Issue(0, 5, 1, true, true)
	if f.Available(FUSimple, 6) >= 0 {
		t.Fatal("lane usable the cycle after a faulty instruction")
	}
	if f.Available(FUSimple, 7) < 0 {
		t.Fatal("lane not released after freeze")
	}
}

func TestFUSRNonPipelined(t *testing.T) {
	f := NewFUSR(0, 1, 0)
	f.Issue(0, 0, 12, false, false) // div occupies 12 cycles
	if f.Available(FUComplex, 11) >= 0 {
		t.Fatal("non-pipelined unit free too early")
	}
	if f.Available(FUComplex, 12) < 0 {
		t.Fatal("non-pipelined unit not released")
	}
}

func TestFUSRNonPipelinedFaulty(t *testing.T) {
	// §3.3.3: busy one extra cycle beyond expected completion.
	f := NewFUSR(0, 1, 0)
	f.Issue(0, 0, 12, false, true)
	if f.Available(FUComplex, 12) >= 0 {
		t.Fatal("faulty non-pipelined unit must hold one extra cycle")
	}
	if f.Available(FUComplex, 13) < 0 {
		t.Fatal("unit never released")
	}
}

func TestFUSRPipelinedMultiCycleFaulty(t *testing.T) {
	// §3.3.3: pipelined multi-cycle unit stops accepting new work until the
	// faulty instruction completes.
	f := NewFUSR(0, 1, 0)
	f.Issue(0, 0, 3, true, true) // faulty mul
	for cy := uint64(1); cy <= 3; cy++ {
		if f.Available(FUComplex, cy) >= 0 {
			t.Fatalf("pipelined unit accepted work at cycle %d behind faulty op", cy)
		}
	}
	if f.Available(FUComplex, 4) < 0 {
		t.Fatal("unit never resumed")
	}
}

func TestFUSRPipelinedMultiCycleClean(t *testing.T) {
	// A clean pipelined mul accepts a new op every cycle.
	f := NewFUSR(0, 1, 0)
	f.Issue(0, 0, 3, true, false)
	if f.Available(FUComplex, 1) < 0 {
		t.Fatal("clean pipelined unit must accept next cycle")
	}
}

func TestFUSRFreezeAndReset(t *testing.T) {
	f := NewFUSR(1, 0, 0)
	f.Freeze(0, 4)
	if f.Available(FUSimple, 4) >= 0 {
		t.Fatal("freeze ignored")
	}
	f.Reset()
	if f.Available(FUSimple, 0) < 0 {
		t.Fatal("reset ignored")
	}
}

func TestKindFor(t *testing.T) {
	if KindFor(true, false) != FUMemory || KindFor(false, true) != FUComplex || KindFor(false, false) != FUSimple {
		t.Fatal("KindFor mapping")
	}
}

func TestFUKindString(t *testing.T) {
	if FUSimple.String() != "simple" || FUComplex.String() != "complex" || FUMemory.String() != "memory" {
		t.Fatal("kind names")
	}
}
