package workload

import (
	"fmt"

	"tvsched/internal/isa"
	"tvsched/internal/rng"
)

func fmtErr(format string, args ...any) string { return fmt.Sprintf(format, args...) }

// CodeBase is the virtual address of the first static instruction; data
// regions are placed far above it.
const CodeBase = 0x0040_0000

// Architectural register conventions used by the generator: r0 is the
// hardwired zero, r28..r31 are long-lived (stack/global/loop-invariant)
// registers written rarely, r1..r27 rotate as short-lived destinations.
const (
	firstRotReg = 1
	lastRotReg  = 27
	numLongRegs = 4 // r28..r31
)

// staticInst is one instruction of the synthetic static program. Its class,
// dependency distances and memory stream are fixed at program-construction
// time, which is what gives dynamic instances of the same PC the behavioural
// repeatability the paper measures in §S1.
type staticInst struct {
	pc    uint64
	class isa.Class
	dest  int8
	d1    int  // dependency distance of src1 (instructions back); 0 = long-lived
	d2    int  // dependency distance of src2; -1 = no src2
	long1 int8 // long-lived register used when d1 == 0
	long2 int8

	// Memory stream (loads/stores): strided walk over [base, base+size).
	memBase   uint64
	memSize   uint64
	memStride uint64
	cursor    uint64
}

// loop is a sequence of basic blocks executed some number of iterations per
// entry; the generator walks loops with Zipf-skewed popularity.
type loop struct {
	insts    []staticInst // whole body, blocks concatenated
	headPC   uint64
	backPC   uint64 // PC of the back-edge branch (last instruction)
	meanIter float64
}

// Generator emits the committed dynamic instruction stream of one synthetic
// benchmark. It is an infinite, deterministic stream: the same (profile,
// seed) always produces the same trace.
type Generator struct {
	prof  Profile
	src   *rng.Source
	loops []loop

	// memory regions
	warmBase uint64
	coldNext uint64

	// dynamic state
	curLoop  int
	iterLeft int
	pos      int // index into current loop body
	ring     [32]int8
	ringPos  int
	rotReg   int8
	emitted  uint64
}

// NewGenerator builds the static program for prof and returns a generator
// seeded deterministically from the profile name and seed.
func NewGenerator(prof Profile, seed uint64) (*Generator, error) {
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	h := seed
	for _, c := range prof.Name {
		h = rng.Mix(h ^ uint64(c))
	}
	g := &Generator{
		prof: prof, src: rng.New(h), rotReg: firstRotReg,
		warmBase: 0x4000_0000, coldNext: 0x8000_0000,
	}
	for i := range g.ring {
		g.ring[i] = int8(28 + i%numLongRegs) // pre-seed with long-lived regs
	}
	g.buildProgram()
	g.enterLoop(0)
	return g, nil
}

// Profile returns the generator's profile.
func (g *Generator) Profile() Profile { return g.prof }

// buildProgram lays out the static loops, blocks and instructions.
func (g *Generator) buildProgram() {
	p := &g.prof
	blockLen := int(1.0/p.Mix[isa.Branch] + 0.5)
	if blockLen < 3 {
		blockLen = 3
	}
	nBlocks := p.StaticInsts / blockLen
	if nBlocks < 2 {
		nBlocks = 2
	}
	nLoops := nBlocks / p.LoopBlocks
	if nLoops < 1 {
		nLoops = 1
	}
	pc := uint64(CodeBase)
	// Data layout: per-instruction hot stripes low, a shared warm region in
	// the middle, and an ever-advancing cold frontier far above.
	hotBase := uint64(0x1000_0000)

	// Renormalized non-branch class mix.
	var nb [isa.NumClasses]float64
	var nbSum float64
	for c := isa.IntALU; c < isa.NumClasses; c++ {
		if c != isa.Branch {
			nb[c] = p.Mix[c]
			nbSum += p.Mix[c]
		}
	}

	for li := 0; li < nLoops; li++ {
		var body []staticInst
		blocks := p.LoopBlocks
		// Each loop has an induction register: a long-lived register updated
		// serially once per iteration (i = i + stride) and consumed by much
		// of the body. This is the high-fanout producer pattern the CDL of
		// §3.5.2 detects (criticality = many dependents in the issue queue).
		induction := int8(28 + li%numLongRegs)
		for b := 0; b < blocks; b++ {
			for k := 0; k < blockLen-1; k++ {
				if b == 0 && k == 0 {
					// Induction update: serial chain across iterations.
					body = append(body, staticInst{
						pc: pc, class: isa.IntALU, dest: induction,
						d1: 0, long1: induction, d2: -1,
					})
					pc += 4
					continue
				}
				si := staticInst{pc: pc, dest: -1, d2: -1}
				pc += 4
				// Draw class from the renormalized mix.
				u := g.src.Float64() * nbSum
				for c := isa.IntALU; c < isa.NumClasses; c++ {
					if c == isa.Branch {
						continue
					}
					if u < nb[c] {
						si.class = c
						break
					}
					u -= nb[c]
				}
				g.assignOperands(&si, induction)
				if si.class.IsMem() {
					g.assignMemStream(&si, hotBase)
				}
				body = append(body, si)
			}
			// Block-terminating branch.
			si := staticInst{pc: pc, class: isa.Branch, dest: -1, d2: -1}
			g.assignOperands(&si, induction)
			pc += 4
			body = append(body, si)
		}
		g.loops = append(g.loops, loop{
			insts:    body,
			headPC:   body[0].pc,
			backPC:   body[len(body)-1].pc,
			meanIter: p.LoopMeanIter,
		})
	}
}

// assignOperands fixes destination and dependency distances for a static
// instruction.
func (g *Generator) assignOperands(si *staticInst, induction int8) {
	p := &g.prof
	if si.class.HasDest() {
		si.dest = g.rotReg
		g.rotReg++
		if g.rotReg > lastRotReg {
			g.rotReg = firstRotReg
		}
	}
	// longReg picks a long-lived source, preferring the loop's induction
	// register (pointer/index arithmetic dominates real loop bodies).
	longReg := func() int8 {
		if g.src.Float64() < 0.6 {
			return induction
		}
		return int8(28 + g.src.Intn(numLongRegs))
	}
	// src1
	if g.src.Float64() < p.LongDepFrac {
		si.d1 = 0
		si.long1 = longReg()
	} else {
		si.d1 = 1 + g.src.Geometric(p.DepP)
		if si.d1 > len(g.ring)-1 {
			si.d1 = 0
			si.long1 = longReg()
		}
	}
	// src2 for two-source classes (alu/mul/div/store); loads use one source
	// (the base register), branches one (the condition).
	switch si.class {
	case isa.IntALU, isa.IntMul, isa.IntDiv, isa.Store:
		if g.src.Float64() < p.LongDepFrac {
			si.d2 = 0
			si.long2 = longReg()
		} else {
			si.d2 = 1 + g.src.Geometric(p.DepP)
			if si.d2 > len(g.ring)-1 {
				si.d2 = 0
				si.long2 = longReg()
			}
		}
	default:
		si.d2 = -1
	}
}

// assignMemStream binds a static memory instruction to a strided walk of the
// shared hot (L1-resident) region; per-access excursions to the warm and
// cold regions are decided dynamically in Next.
func (g *Generator) assignMemStream(si *staticInst, hotBase uint64) {
	si.memBase, si.memSize = hotBase, g.prof.HotBytes
	strides := []uint64{8, 8, 16, 32, 64, 64}
	si.memStride = strides[g.src.Intn(len(strides))]
	si.cursor = uint64(g.src.Intn(int(si.memSize/si.memStride))) * si.memStride
}

// enterLoop switches the dynamic walk to loop li and draws an iteration count.
func (g *Generator) enterLoop(li int) {
	g.curLoop = li
	g.pos = 0
	it := int(g.src.Exp(g.prof.LoopMeanIter)) + 1
	g.iterLeft = it
}

// Next returns the next committed instruction. The stream is infinite.
func (g *Generator) Next() isa.Inst {
	lp := &g.loops[g.curLoop]
	si := &lp.insts[g.pos]
	in := isa.Inst{PC: si.pc, Class: si.class, Dest: si.dest, Src1: -1, Src2: -1}

	// Resolve sources against the dynamic ring of recent writers.
	if si.d1 == 0 {
		in.Src1 = si.long1
	} else {
		in.Src1 = g.ring[(g.ringPos-si.d1+2*len(g.ring))%len(g.ring)]
	}
	if si.d2 >= 0 {
		if si.d2 == 0 {
			in.Src2 = si.long2
		} else {
			in.Src2 = g.ring[(g.ringPos-si.d2+2*len(g.ring))%len(g.ring)]
		}
	}

	// Memory address: usually a strided walk of the hot region; per access,
	// an excursion to the warm region (L1 miss, L2 hit) with probability
	// L2Rate, or to a fresh cold line (misses everywhere) with probability
	// DRAMRate — these rates set the benchmark's memory-stall structure.
	if si.class.IsMem() {
		u := g.src.Float64()
		switch {
		case u < g.prof.DRAMRate:
			in.Addr = g.coldNext
			g.coldNext += 64
		case u < g.prof.DRAMRate+g.prof.L2Rate:
			lines := g.prof.WarmBytes / 64
			in.Addr = g.warmBase + uint64(g.src.Intn(int(lines)))*64
		default:
			in.Addr = si.memBase + si.cursor
			si.cursor += si.memStride
			if si.cursor >= si.memSize {
				si.cursor = 0
			}
		}
	}

	// Record destination in the writer ring.
	if si.dest >= 0 {
		g.ringPos = (g.ringPos + 1) % len(g.ring)
		g.ring[g.ringPos] = si.dest
	}

	// Control flow.
	last := g.pos == len(lp.insts)-1
	if si.class == isa.Branch {
		if last {
			// Loop back-edge: taken while iterations remain.
			if g.iterLeft > 1 {
				g.iterLeft--
				in.Taken = true
				in.Target = lp.headPC
				in.NextPC = lp.headPC
				g.pos = 0
			} else {
				// Exit: pick the next loop by Zipf popularity.
				in.Taken = false
				next := g.src.Zipf(len(g.loops), g.prof.ZipfTheta)
				g.enterLoop(next)
				in.NextPC = g.loops[next].headPC
				in.Target = 0
			}
		} else {
			// Intra-body conditional branch: not taken on the committed
			// path (falls through to the next block).
			in.Taken = false
			in.NextPC = si.pc + 4
			g.pos++
		}
	} else {
		in.NextPC = si.pc + 4
		g.pos++
		if last { // non-branch at end cannot happen (blocks end in branches)
			g.pos = 0
		}
	}
	g.emitted++
	return in
}

// WarmRegion returns the base address and size of the benchmark's warm
// (L2-resident) data region, for cache prefill before a measured phase.
func (g *Generator) WarmRegion() (base, size uint64) {
	return g.warmBase, g.prof.WarmBytes
}

// Emitted returns the number of instructions generated so far.
func (g *Generator) Emitted() uint64 { return g.emitted }

// StaticFootprint returns the number of static instructions in the program.
func (g *Generator) StaticFootprint() int {
	n := 0
	for i := range g.loops {
		n += len(g.loops[i].insts)
	}
	return n
}

// Trace collects the next n instructions into a slice (testing convenience).
func (g *Generator) Trace(n int) []isa.Inst {
	out := make([]isa.Inst, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}
