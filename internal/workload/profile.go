// Package workload generates deterministic synthetic instruction traces that
// stand in for the paper's SPEC CPU2006 SimPoint phases (§4.2). We cannot
// ship SPEC binaries or a full-system simulator, so each benchmark is a
// stochastic program model whose knobs control exactly the properties the
// paper's results depend on:
//
//   - instruction mix and functional-unit pressure (simple vs complex ALU,
//     memory ports);
//   - register dependency-distance distribution — the inherent ILP, which
//     determines how much architectural slack can absorb a confined
//     +1-cycle violation (§3.1);
//   - memory-level behaviour (L2 and DRAM access rates) — the data-stall
//     structure that hides violation penalties in benchmarks like
//     libquantum and mcf (§5.1);
//   - branch misprediction rate — how often the 10-stage loop is paid;
//   - static code footprint and loop structure — the PC reuse that makes
//     the TEP work and the path commonality of §S1 possible;
//   - fault susceptibility bias — per-benchmark fault-rate differences
//     (Table 1).
//
// Profiles are calibrated so fault-free IPC approximates Table 1.
package workload

import (
	"errors"
	"fmt"

	"tvsched/internal/isa"
)

// ErrUnknownBenchmark is wrapped by Lookup failures, so callers can match
// them with errors.Is. The public facade re-exports it.
var ErrUnknownBenchmark = errors.New("unknown benchmark")

// Profile parameterizes one synthetic benchmark.
type Profile struct {
	Name string

	// Mix gives the instruction-class probabilities; it must sum to ~1.
	Mix [isa.NumClasses]float64

	// DepP is the geometric parameter of register dependency distance:
	// distance d = 1 + Geometric(DepP). Larger DepP means shorter distances,
	// longer serial chains, and lower ILP.
	DepP float64
	// LongDepFrac is the fraction of source operands that reference
	// long-lived (loop-invariant/induction) registers.
	LongDepFrac float64

	// Memory behaviour. Each static memory instruction strides through a
	// hot, L1-resident region of HotBytes. Per dynamic access, with
	// probability L2Rate the access instead touches a random line of a
	// WarmBytes region (L1 miss, L2 hit), and with probability DRAMRate it
	// touches a fresh cold line (miss everywhere). These rates directly set
	// the benchmark's memory-stall structure.
	HotBytes, WarmBytes uint64
	L2Rate, DRAMRate    float64

	// MispredictRate is the per-branch probability of paying the
	// misprediction loop (charged via bpred.OracleNoise; the trace-driven
	// model does not simulate wrong-path fetch).
	MispredictRate float64

	// StaticInsts is the code footprint in static instructions; LoopBlocks
	// is the typical number of basic blocks per loop body, and LoopMeanIter
	// the mean iterations per loop entry. ZipfTheta skews loop popularity
	// (hot loops dominate execution).
	StaticInsts  int
	LoopBlocks   int
	LoopMeanIter float64
	ZipfTheta    float64

	// FaultBias multiplies the fault model's near-critical tail fraction for
	// this benchmark (Table 1: fault rates differ ~2x across benchmarks).
	FaultBias float64

	// Paper reference values (Table 1), kept for calibration and for
	// EXPERIMENTS.md reporting: fault-free IPC and fault rates (%) in the
	// two faulty environments.
	PaperIPC    float64
	PaperFRLow  float64 // at 1.04 V
	PaperFRHigh float64 // at 0.97 V
}

// mix builds a Mix array in class order: alu, mul, div, load, store, branch.
func mix(alu, mul, div, load, store, branch float64) [isa.NumClasses]float64 {
	return [isa.NumClasses]float64{alu, mul, div, load, store, branch}
}

// KB/MB helpers for readability.
const (
	kb = 1 << 10
	mb = 1 << 20
)

// SPEC2006 returns the twelve benchmark profiles of Table 1. The parameter
// choices are calibrated against the paper's fault-free IPC column; see
// EXPERIMENTS.md for achieved values.
func SPEC2006() []Profile {
	return []Profile{
		{
			// astar: pointer-chasing path finding; short dependency chains
			// through the open list, moderate L2/DRAM traffic.
			Name: "astar",
			Mix:  mix(0.42, 0.01, 0.003, 0.297, 0.12, 0.15),
			DepP: 0.60, LongDepFrac: 0.24,
			HotBytes: 24 * kb, WarmBytes: 2 * mb,
			L2Rate: 0.105, DRAMRate: 0.0102,
			MispredictRate: 0.052,
			StaticInsts:    3600, LoopBlocks: 4, LoopMeanIter: 24, ZipfTheta: 0.85,
			FaultBias: 1.39,
			PaperIPC:  0.69, PaperFRLow: 2.01, PaperFRHigh: 6.74,
		},
		{
			// bzip2: compression; regular loops, good locality, decent ILP.
			Name: "bzip2",
			Mix:  mix(0.50, 0.02, 0.002, 0.256, 0.11, 0.112),
			DepP: 0.40, LongDepFrac: 0.36,
			HotBytes: 20 * kb, WarmBytes: 1 * mb,
			L2Rate: 0.055, DRAMRate: 0.0012,
			MispredictRate: 0.038,
			StaticInsts:    2800, LoopBlocks: 3, LoopMeanIter: 60, ZipfTheta: 0.95,
			FaultBias: 1.65,
			PaperIPC:  1.48, PaperFRLow: 2.24, PaperFRHigh: 8.92,
		},
		{
			// gcc: compiler; large code footprint, branchy, mixed locality.
			Name: "gcc",
			Mix:  mix(0.46, 0.015, 0.004, 0.261, 0.12, 0.14),
			DepP: 0.24, LongDepFrac: 0.42,
			HotBytes: 26 * kb, WarmBytes: 3 * mb,
			L2Rate: 0.011, DRAMRate: 0.0010,
			MispredictRate: 0.036,
			StaticInsts:    9000, LoopBlocks: 5, LoopMeanIter: 14, ZipfTheta: 0.75,
			FaultBias: 1.68,
			PaperIPC:  1.34, PaperFRLow: 1.50, PaperFRHigh: 8.43,
		},
		{
			// gobmk: game tree search; very branchy but ILP-rich blocks.
			Name: "gobmk",
			Mix:  mix(0.52, 0.01, 0.002, 0.236, 0.092, 0.14),
			DepP: 0.24, LongDepFrac: 0.44,
			HotBytes: 22 * kb, WarmBytes: 1 * mb,
			L2Rate: 0.008, DRAMRate: 0.0004,
			MispredictRate: 0.032,
			StaticInsts:    6000, LoopBlocks: 4, LoopMeanIter: 18, ZipfTheta: 0.80,
			FaultBias: 1.70,
			PaperIPC:  1.68, PaperFRLow: 2.16, PaperFRHigh: 8.64,
		},
		{
			// libquantum: streaming over a huge quantum-register array; long
			// DRAM-missing load streams dominate (paper: "greater data
			// stalls"), with serial updates between them.
			Name: "libquantum",
			Mix:  mix(0.44, 0.015, 0.001, 0.324, 0.10, 0.12),
			DepP: 0.62, LongDepFrac: 0.22,
			HotBytes: 16 * kb, WarmBytes: 4 * mb,
			L2Rate: 0.12, DRAMRate: 0.0238,
			MispredictRate: 0.014,
			StaticInsts:    1400, LoopBlocks: 2, LoopMeanIter: 220, ZipfTheta: 1.1,
			FaultBias: 1.72,
			PaperIPC:  0.51, PaperFRLow: 2.10, PaperFRHigh: 10.54,
		},
		{
			// mcf: network simplex; pointer chasing through a working set far
			// beyond L2, lowest IPC in the suite.
			Name: "mcf",
			Mix:  mix(0.40, 0.005, 0.001, 0.344, 0.11, 0.14),
			DepP: 0.70, LongDepFrac: 0.16,
			HotBytes: 16 * kb, WarmBytes: 4 * mb,
			L2Rate: 0.14, DRAMRate: 0.038,
			MispredictRate: 0.046,
			StaticInsts:    1800, LoopBlocks: 3, LoopMeanIter: 40, ZipfTheta: 0.9,
			FaultBias: 1.16,
			PaperIPC:  0.34, PaperFRLow: 1.73, PaperFRHigh: 6.45,
		},
		{
			// perlbench: interpreter dispatch; branchy, mixed dependencies.
			Name: "perlbench",
			Mix:  mix(0.47, 0.01, 0.003, 0.26, 0.117, 0.14),
			DepP: 0.38, LongDepFrac: 0.34,
			HotBytes: 24 * kb, WarmBytes: 2 * mb,
			L2Rate: 0.030, DRAMRate: 0.0011,
			MispredictRate: 0.043,
			StaticInsts:    7000, LoopBlocks: 5, LoopMeanIter: 12, ZipfTheta: 0.8,
			FaultBias: 1.42,
			PaperIPC:  1.31, PaperFRLow: 1.80, PaperFRHigh: 7.21,
		},
		{
			// povray: ray tracing; arithmetic-dense with abundant ILP and a
			// cache-resident scene, highest IPC in the suite.
			Name: "povray",
			Mix:  mix(0.543, 0.06, 0.003, 0.214, 0.08, 0.10),
			DepP: 0.36, LongDepFrac: 0.48,
			HotBytes: 24 * kb, WarmBytes: 1 * mb,
			L2Rate: 0.020, DRAMRate: 0.0003,
			MispredictRate: 0.018,
			StaticInsts:    4200, LoopBlocks: 4, LoopMeanIter: 30, ZipfTheta: 0.9,
			FaultBias: 1.10,
			PaperIPC:  1.941, PaperFRLow: 1.57, PaperFRHigh: 6.31,
		},
		{
			// sjeng: chess search; high inherent ILP (paper calls it out as
			// the most violation-susceptible benchmark).
			Name: "sjeng",
			Mix:  mix(0.53, 0.015, 0.002, 0.225, 0.088, 0.14),
			DepP: 0.15, LongDepFrac: 0.52,
			HotBytes: 22 * kb, WarmBytes: 1 * mb,
			L2Rate: 0.006, DRAMRate: 0.0003,
			MispredictRate: 0.022,
			StaticInsts:    5200, LoopBlocks: 4, LoopMeanIter: 20, ZipfTheta: 0.85,
			FaultBias: 1.68,
			PaperIPC:  1.93, PaperFRLow: 2.29, PaperFRHigh: 9.19,
		},
		{
			// sphinx3: speech recognition; regular dot-product loops over an
			// L2-sized acoustic model.
			Name: "sphinx3",
			Mix:  mix(0.49, 0.045, 0.003, 0.262, 0.08, 0.12),
			DepP: 0.36, LongDepFrac: 0.34,
			HotBytes: 24 * kb, WarmBytes: 4 * mb,
			L2Rate: 0.088, DRAMRate: 0.0015,
			MispredictRate: 0.022,
			StaticInsts:    3000, LoopBlocks: 3, LoopMeanIter: 80, ZipfTheta: 1.0,
			FaultBias: 1.08,
			PaperIPC:  1.30, PaperFRLow: 1.73, PaperFRHigh: 6.95,
		},
		{
			// tonto: quantum chemistry; multiply-heavy numeric kernels.
			Name: "tonto",
			Mix:  mix(0.48, 0.07, 0.008, 0.242, 0.09, 0.11),
			DepP: 0.34, LongDepFrac: 0.36,
			HotBytes: 26 * kb, WarmBytes: 3 * mb,
			L2Rate: 0.062, DRAMRate: 0.0013,
			MispredictRate: 0.021,
			StaticInsts:    3800, LoopBlocks: 4, LoopMeanIter: 50, ZipfTheta: 0.95,
			FaultBias: 1.05,
			PaperIPC:  1.41, PaperFRLow: 1.39, PaperFRHigh: 5.59,
		},
		{
			// xalancbmk: XML transformation; pointer-rich traversal with a
			// large working set and low IPC.
			Name: "xalancbmk",
			Mix:  mix(0.42, 0.005, 0.002, 0.323, 0.12, 0.13),
			DepP: 0.66, LongDepFrac: 0.18,
			HotBytes: 20 * kb, WarmBytes: 4 * mb,
			L2Rate: 0.15, DRAMRate: 0.0105,
			MispredictRate: 0.036,
			StaticInsts:    8000, LoopBlocks: 5, LoopMeanIter: 16, ZipfTheta: 0.8,
			FaultBias: 1.47,
			PaperIPC:  0.51, PaperFRLow: 1.99, PaperFRHigh: 7.95,
		},
	}
}

// ByName returns the profile with the given name from SPEC2006.
func ByName(name string) (Profile, bool) {
	for _, p := range SPEC2006() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// Lookup is ByName with a matchable error: unknown names wrap
// ErrUnknownBenchmark and include the valid name list.
func Lookup(name string) (Profile, error) {
	p, ok := ByName(name)
	if !ok {
		return Profile{}, fmt.Errorf("workload: %w %q (valid: %v)", ErrUnknownBenchmark, name, Names())
	}
	return p, nil
}

// Names returns the benchmark names in Table 1 order.
func Names() []string {
	ps := SPEC2006()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return names
}

// Validate checks a profile for internal consistency.
func (p *Profile) Validate() error {
	var sum float64
	for _, f := range p.Mix {
		sum += f
	}
	if sum < 0.98 || sum > 1.02 {
		return errf("profile %s: mix sums to %v", p.Name, sum)
	}
	if p.Mix[isa.Branch] <= 0 {
		return errf("profile %s: needs branches", p.Name)
	}
	if p.DepP <= 0 || p.DepP >= 1 {
		return errf("profile %s: DepP out of range", p.Name)
	}
	if p.L2Rate < 0 || p.DRAMRate < 0 || p.L2Rate+p.DRAMRate > 1 {
		return errf("profile %s: memory rates invalid", p.Name)
	}
	if p.HotBytes < 1*kb || p.WarmBytes < 64*kb {
		return errf("profile %s: regions too small", p.Name)
	}
	if p.StaticInsts < 64 {
		return errf("profile %s: static footprint too small", p.Name)
	}
	if p.LoopBlocks < 1 || p.LoopMeanIter < 1 {
		return errf("profile %s: loop structure invalid", p.Name)
	}
	return nil
}

func errf(format string, args ...any) error { return &profileError{fmtErr(format, args...)} }

type profileError struct{ msg string }

func (e *profileError) Error() string { return e.msg }
