package workload

import (
	"testing"

	"tvsched/internal/rng"
)

// TestRandomProfileAlwaysValid draws many profiles and requires every one to
// pass Validate and build a working generator — the contract cmd/tvfuzz
// depends on.
func TestRandomProfileAlwaysValid(t *testing.T) {
	for seed := uint64(0); seed < 300; seed++ {
		p := RandomProfile(rng.New(seed))
		if err := p.Validate(); err != nil {
			t.Fatalf("seed %d: %v (%+v)", seed, err, p)
		}
		g, err := NewGenerator(p, seed)
		if err != nil {
			t.Fatalf("seed %d: generator: %v", seed, err)
		}
		for i := 0; i < 64; i++ {
			g.Next() // must not panic
		}
	}
}

// TestRandomProfileDeterministic pins that the same source state yields the
// same profile, and different seeds explore the space.
func TestRandomProfileDeterministic(t *testing.T) {
	a := RandomProfile(rng.New(7))
	b := RandomProfile(rng.New(7))
	if a != b {
		t.Fatalf("same seed, different profiles:\n%+v\n%+v", a, b)
	}
	c := RandomProfile(rng.New(8))
	if a == c {
		t.Fatal("different seeds produced identical profiles")
	}
}
