package workload

import (
	"fmt"

	"tvsched/internal/isa"
	"tvsched/internal/rng"
)

// RandomProfile draws a random but always-valid benchmark profile from r —
// the workload half of the differential fuzzer's configuration space (see
// cmd/tvfuzz). Every knob stays inside Validate's bounds, and the ranges
// bracket the SPEC2006 calibration (§4.2) with room to spare on both sides,
// so the fuzzer explores machines the curated profiles never exercise:
// near-serial dependency chains, branch-free streaming kernels, tiny hot
// loops, DRAM-bound pointer chases. Deterministic: the same source state
// yields the same profile.
func RandomProfile(r *rng.Source) Profile {
	uni := func(lo, hi float64) float64 { return lo + r.Float64()*(hi-lo) }

	// Random class weights, normalized to sum exactly to 1. Branch weight is
	// bounded away from zero (Validate requires branches; the generator's
	// loop structure needs them to terminate blocks).
	w := [isa.NumClasses]float64{}
	w[isa.IntALU] = uni(0.25, 0.60)
	w[isa.IntMul] = uni(0, 0.08)
	w[isa.IntDiv] = uni(0, 0.01)
	w[isa.Load] = uni(0.10, 0.35)
	w[isa.Store] = uni(0.04, 0.15)
	w[isa.Branch] = uni(0.05, 0.20)
	var sum float64
	for _, f := range w {
		sum += f
	}
	for i := range w {
		w[i] /= sum
	}

	p := Profile{
		Name:        fmt.Sprintf("fuzz-%08x", r.Uint32()),
		Mix:         w,
		DepP:        uni(0.10, 0.80),
		LongDepFrac: uni(0.08, 0.55),
		HotBytes:    uint64(1+r.Intn(48)) * kb,
		WarmBytes:   uint64(64+r.Intn(4*1024-64)) * kb,
		L2Rate:      uni(0, 0.16),
		DRAMRate:    uni(0, 0.04),

		MispredictRate: uni(0, 0.06),
		StaticInsts:    64 + r.Intn(10000),
		LoopBlocks:     1 + r.Intn(6),
		LoopMeanIter:   uni(2, 240),
		ZipfTheta:      uni(0.4, 1.2),
		FaultBias:      uni(0.8, 2.0),
	}
	return p
}
