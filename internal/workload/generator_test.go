package workload

import (
	"math"
	"testing"

	"tvsched/internal/isa"
)

func testProfile() Profile {
	p, ok := ByName("bzip2")
	if !ok {
		panic("bzip2 profile missing")
	}
	return p
}

func TestAllProfilesValid(t *testing.T) {
	for _, p := range SPEC2006() {
		if err := p.Validate(); err != nil {
			t.Errorf("profile %s invalid: %v", p.Name, err)
		}
	}
}

func TestTwelveBenchmarks(t *testing.T) {
	ps := SPEC2006()
	if len(ps) != 12 {
		t.Fatalf("Table 1 has 12 benchmarks, got %d", len(ps))
	}
	want := []string{"astar", "bzip2", "gcc", "gobmk", "libquantum", "mcf",
		"perlbench", "povray", "sjeng", "sphinx3", "tonto", "xalancbmk"}
	for i, n := range Names() {
		if n != want[i] {
			t.Errorf("benchmark %d = %s, want %s", i, n, want[i])
		}
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("sjeng"); !ok {
		t.Fatal("sjeng not found")
	}
	if _, ok := ByName("nonesuch"); ok {
		t.Fatal("found nonexistent profile")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	g1, err := NewGenerator(testProfile(), 42)
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := NewGenerator(testProfile(), 42)
	t1 := g1.Trace(5000)
	t2 := g2.Trace(5000)
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("traces diverge at %d: %+v vs %+v", i, t1[i], t2[i])
		}
	}
}

func TestGeneratorSeedsDiffer(t *testing.T) {
	g1, _ := NewGenerator(testProfile(), 1)
	g2, _ := NewGenerator(testProfile(), 2)
	t1, t2 := g1.Trace(1000), g2.Trace(1000)
	same := 0
	for i := range t1 {
		if t1[i] == t2[i] {
			same++
		}
	}
	if same == len(t1) {
		t.Fatal("different seeds gave identical traces")
	}
}

func TestInstructionsValid(t *testing.T) {
	g, _ := NewGenerator(testProfile(), 7)
	for i, in := range g.Trace(20000) {
		if err := in.Validate(); err != nil {
			t.Fatalf("instruction %d invalid: %v (%+v)", i, err, in)
		}
	}
}

func TestNextPCChains(t *testing.T) {
	g, _ := NewGenerator(testProfile(), 9)
	tr := g.Trace(20000)
	for i := 0; i < len(tr)-1; i++ {
		if tr[i].NextPC != tr[i+1].PC {
			t.Fatalf("NextPC broken at %d: %#x -> declared %#x, actual %#x",
				i, tr[i].PC, tr[i].NextPC, tr[i+1].PC)
		}
	}
}

func TestTakenBranchesTargetDeclared(t *testing.T) {
	g, _ := NewGenerator(testProfile(), 11)
	for _, in := range g.Trace(20000) {
		if in.Class == isa.Branch && in.Taken && in.Target != in.NextPC {
			t.Fatalf("taken branch NextPC %#x != Target %#x", in.NextPC, in.Target)
		}
	}
}

func TestMixApproximatelyHonored(t *testing.T) {
	for _, prof := range SPEC2006() {
		g, err := NewGenerator(prof, 3)
		if err != nil {
			t.Fatal(err)
		}
		n := 60000
		var counts [isa.NumClasses]int
		for _, in := range g.Trace(n) {
			counts[in.Class]++
		}
		for c := isa.IntALU; c < isa.NumClasses; c++ {
			got := float64(counts[c]) / float64(n)
			want := prof.Mix[c]
			// Loop structure and block quantization distort the mix; the
			// branch fraction is set by block length so allow wide slack.
			if math.Abs(got-want) > 0.08+want*0.5 {
				t.Errorf("%s: class %v frequency %.3f, mix says %.3f",
					prof.Name, c, got, want)
			}
		}
	}
}

func TestPCReuse(t *testing.T) {
	// The TEP premise: hot static instructions recur frequently.
	g, _ := NewGenerator(testProfile(), 5)
	n := 100000
	seen := map[uint64]int{}
	for _, in := range g.Trace(n) {
		seen[in.PC]++
	}
	if len(seen) > g.StaticFootprint() {
		t.Fatalf("more distinct PCs (%d) than static footprint (%d)", len(seen), g.StaticFootprint())
	}
	// Hottest PC should repeat a lot.
	max := 0
	for _, c := range seen {
		if c > max {
			max = c
		}
	}
	if max < n/1000 {
		t.Fatalf("hottest PC only executes %d times in %d", max, n)
	}
}

func TestMemAddressesStride(t *testing.T) {
	g, _ := NewGenerator(testProfile(), 13)
	// Per-PC consecutive addresses should differ by a constant stride (until
	// wraparound) — the §S1 AGEN locality property.
	lastAddr := map[uint64]uint64{}
	strideOK, strideTotal := 0, 0
	for _, in := range g.Trace(200000) {
		if !in.Class.IsMem() {
			continue
		}
		if prev, ok := lastAddr[in.PC]; ok {
			diff := int64(in.Addr) - int64(prev)
			strideTotal++
			if diff > 0 && diff <= 64 {
				strideOK++
			}
		}
		lastAddr[in.PC] = in.Addr
	}
	if strideTotal == 0 {
		t.Fatal("no repeated memory PCs observed")
	}
	// Warm/cold excursions break the stride occasionally; the hot-region
	// walks dominate (the §S1 AGEN locality property).
	if frac := float64(strideOK) / float64(strideTotal); frac < 0.75 {
		t.Fatalf("only %.2f of per-PC address deltas are small strides", frac)
	}
}

func TestRegistersInRange(t *testing.T) {
	g, _ := NewGenerator(testProfile(), 17)
	for _, in := range g.Trace(50000) {
		for _, r := range []int8{in.Dest, in.Src1, in.Src2} {
			if r >= isa.NumArchRegs {
				t.Fatalf("register %d out of range in %+v", r, in)
			}
		}
		if in.Class.HasDest() && in.Dest < firstRotReg {
			t.Fatalf("dest %d invalid", in.Dest)
		}
	}
}

func TestDependencyDistanceTracksDepP(t *testing.T) {
	// A profile with large DepP (short deps) must show shorter observed
	// producer-consumer distances than one with small DepP.
	serial := testProfile()
	serial.DepP, serial.LongDepFrac = 0.8, 0.1
	ilp := testProfile()
	ilp.DepP, ilp.LongDepFrac = 0.2, 0.4

	meanDist := func(p Profile) float64 {
		g, _ := NewGenerator(p, 23)
		lastWrite := map[int8]int{}
		var total, n float64
		for i, in := range g.Trace(100000) {
			if in.Src1 > 0 {
				if w, ok := lastWrite[in.Src1]; ok {
					total += float64(i - w)
					n++
				}
			}
			if in.Dest > 0 {
				lastWrite[in.Dest] = i
			}
		}
		return total / n
	}
	ds, di := meanDist(serial), meanDist(ilp)
	if ds >= di {
		t.Fatalf("serial profile mean dep distance %.2f not below ILP profile %.2f", ds, di)
	}
}

func TestInvalidProfileRejected(t *testing.T) {
	p := testProfile()
	p.DepP = 2.0
	if _, err := NewGenerator(p, 1); err == nil {
		t.Fatal("invalid profile accepted")
	}
}

func TestStaticFootprintNearTarget(t *testing.T) {
	for _, prof := range SPEC2006() {
		g, _ := NewGenerator(prof, 1)
		got := g.StaticFootprint()
		if got < prof.StaticInsts/2 || got > prof.StaticInsts*2 {
			t.Errorf("%s: static footprint %d far from target %d", prof.Name, got, prof.StaticInsts)
		}
	}
}

func TestEmittedCounts(t *testing.T) {
	g, _ := NewGenerator(testProfile(), 1)
	g.Trace(123)
	if g.Emitted() != 123 {
		t.Fatalf("Emitted() = %d", g.Emitted())
	}
}

func BenchmarkGenerator(b *testing.B) {
	g, _ := NewGenerator(testProfile(), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}

func TestMemoryRatesMatchProfile(t *testing.T) {
	// The L2/DRAM excursion rates are the calibration contract: measured
	// dynamic rates must track the profile's knobs.
	for _, name := range []string{"mcf", "povray"} {
		prof, _ := ByName(name)
		g, err := NewGenerator(prof, 31)
		if err != nil {
			t.Fatal(err)
		}
		warmBase, warmSize := g.WarmRegion()
		var mem, warm, cold int
		for _, in := range g.Trace(300000) {
			if !in.Class.IsMem() {
				continue
			}
			mem++
			switch {
			case in.Addr >= warmBase && in.Addr < warmBase+warmSize:
				warm++
			case in.Addr >= 0x8000_0000:
				cold++
			}
		}
		warmRate := float64(warm) / float64(mem)
		coldRate := float64(cold) / float64(mem)
		if warmRate < prof.L2Rate*0.8 || warmRate > prof.L2Rate*1.2 {
			t.Errorf("%s: warm rate %.4f vs profile %.4f", name, warmRate, prof.L2Rate)
		}
		if coldRate < prof.DRAMRate*0.7 || coldRate > prof.DRAMRate*1.3 {
			t.Errorf("%s: cold rate %.4f vs profile %.4f", name, coldRate, prof.DRAMRate)
		}
	}
}

func TestColdAddressesNeverRepeat(t *testing.T) {
	// Cold excursions model compulsory DRAM misses: every cold line must be
	// fresh.
	prof, _ := ByName("mcf")
	g, _ := NewGenerator(prof, 33)
	seen := map[uint64]bool{}
	for _, in := range g.Trace(200000) {
		if in.Class.IsMem() && in.Addr >= 0x8000_0000 {
			line := in.Addr >> 6
			if seen[line] {
				t.Fatalf("cold line %#x repeated", line)
			}
			seen[line] = true
		}
	}
	if len(seen) == 0 {
		t.Fatal("no cold accesses observed")
	}
}

func TestBranchFractionSetsBlockLength(t *testing.T) {
	// The generator quantizes the branch fraction via block length; the
	// realized fraction must stay within a third of the mix's.
	for _, prof := range SPEC2006() {
		g, _ := NewGenerator(prof, 35)
		n := 50000
		branches := 0
		for _, in := range g.Trace(n) {
			if in.Class == isa.Branch {
				branches++
			}
		}
		got := float64(branches) / float64(n)
		want := prof.Mix[isa.Branch]
		if got < want*0.66 || got > want*1.5 {
			t.Errorf("%s: branch fraction %.3f vs mix %.3f", prof.Name, got, want)
		}
	}
}
