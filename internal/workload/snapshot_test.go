package workload

import (
	"testing"

	"tvsched/internal/snap"
)

// TestGeneratorSnapshotRoundTrip advances a generator mid-stream, snapshots
// it, restores into a freshly built generator of the same (profile, seed),
// and requires the two streams to be identical from there on.
func TestGeneratorSnapshotRoundTrip(t *testing.T) {
	prof, err := Lookup("bzip2")
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGenerator(prof, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50000; i++ {
		g.Next()
	}

	var w snap.Writer
	g.AppendState(&w)

	g2, err := NewGenerator(prof, 42)
	if err != nil {
		t.Fatal(err)
	}
	if err := g2.ReadState(snap.NewReader(w.B)); err != nil {
		t.Fatal(err)
	}
	if g2.Emitted() != g.Emitted() {
		t.Fatalf("emitted %d != %d", g2.Emitted(), g.Emitted())
	}
	for i := 0; i < 50000; i++ {
		if a, b := g.Next(), g2.Next(); a != b {
			t.Fatalf("streams diverged at %d:\n  %+v\n  %+v", i, a, b)
		}
	}
}

// TestGeneratorSnapshotWrongProgram pins the footprint guard: restoring into
// a generator built from a different profile must fail loudly.
func TestGeneratorSnapshotWrongProgram(t *testing.T) {
	profA, _ := Lookup("bzip2")
	profB, _ := Lookup("sjeng")
	g, err := NewGenerator(profA, 1)
	if err != nil {
		t.Fatal(err)
	}
	var w snap.Writer
	g.AppendState(&w)
	g2, err := NewGenerator(profB, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.StaticFootprint() == g2.StaticFootprint() {
		t.Skip("profiles happen to share a footprint; guard not exercisable here")
	}
	if err := g2.ReadState(snap.NewReader(w.B)); err == nil {
		t.Fatal("cross-profile restore accepted")
	}
}

func TestGeneratorSnapshotTruncated(t *testing.T) {
	prof, _ := Lookup("bzip2")
	g, err := NewGenerator(prof, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.ReadState(snap.NewReader([]byte{1, 2})); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
}
