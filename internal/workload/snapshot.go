package workload

import (
	"fmt"

	"tvsched/internal/snap"
)

// AppendState serializes the generator's dynamic state: the RNG stream, the
// per-static-instruction memory cursors (the only mutable field of the
// static program), and the loop-walk state. The static program itself is
// not serialized — it is a pure function of (profile, seed), and the
// restoring side rebuilds it with NewGenerator before calling ReadState.
func (g *Generator) AppendState(w *snap.Writer) {
	g.src.AppendState(w)
	w.U32(uint32(g.StaticFootprint()))
	for li := range g.loops {
		for ii := range g.loops[li].insts {
			w.U64(g.loops[li].insts[ii].cursor)
		}
	}
	w.U64(g.coldNext)
	w.I64(int64(g.curLoop))
	w.I64(int64(g.iterLeft))
	w.I64(int64(g.pos))
	for _, v := range g.ring {
		w.U8(uint8(v))
	}
	w.I64(int64(g.ringPos))
	w.U8(uint8(g.rotReg))
	w.U64(g.emitted)
}

// ReadState restores state written by AppendState. The receiver must have
// been built by NewGenerator with the same (profile, seed) the writer used —
// the static-footprint check catches a mismatched program, and the loop
// indices are bounds-checked.
func (g *Generator) ReadState(r *snap.Reader) error {
	if err := g.src.ReadState(r); err != nil {
		return err
	}
	if got := int(r.U32()); got != g.StaticFootprint() {
		return fmt.Errorf("%w: static footprint %d, have %d",
			snap.ErrCorrupt, got, g.StaticFootprint())
	}
	for li := range g.loops {
		for ii := range g.loops[li].insts {
			g.loops[li].insts[ii].cursor = r.U64()
		}
	}
	g.coldNext = r.U64()
	g.curLoop = int(r.I64())
	g.iterLeft = int(r.I64())
	g.pos = int(r.I64())
	for i := range g.ring {
		g.ring[i] = int8(r.U8())
	}
	g.ringPos = int(r.I64())
	g.rotReg = int8(r.U8())
	g.emitted = r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	if g.curLoop < 0 || g.curLoop >= len(g.loops) {
		return fmt.Errorf("%w: loop index %d of %d", snap.ErrCorrupt, g.curLoop, len(g.loops))
	}
	if g.pos < 0 || g.pos >= len(g.loops[g.curLoop].insts) {
		return fmt.Errorf("%w: position %d in loop of %d",
			snap.ErrCorrupt, g.pos, len(g.loops[g.curLoop].insts))
	}
	if g.ringPos < 0 || g.ringPos >= len(g.ring) {
		return fmt.Errorf("%w: ring position %d", snap.ErrCorrupt, g.ringPos)
	}
	return nil
}
