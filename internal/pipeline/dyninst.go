package pipeline

import (
	"math"

	"tvsched/internal/isa"
	"tvsched/internal/tep"
)

// unknown marks a cycle value not yet determined.
const unknown = math.MaxUint64

// dynInst is one dynamic instruction in flight. Its identity (Seq, In, fault
// ground truth, oracle branch outcome) is fixed at first fetch and survives
// replays; pipeline state is reset when the instruction is squashed.
type dynInst struct {
	seq uint64
	in  isa.Inst

	// Identity decided at first fetch.
	fault      bool      // ground truth: violates somewhere if given 1 cycle
	faultStage isa.Stage // the violating stage (most critical if several)
	mispredict bool      // oracle decision: branch pays the mispredict loop
	replaySafe bool      // set after a replay; re-execution cannot fault
	fillAt     uint64    // absolute cycle a load's cache fill completes; a
	// replayed load pays only the remaining latency (the miss it initiated
	// keeps being serviced while the pipeline recovers)

	// Front-end state.
	availAt uint64 // cycle at which dispatch may consume it
	history uint64 // branch history at (re)fetch, for TEP indexing
	pred    tep.Prediction

	// Issue-queue state.
	inIQ      bool
	timestamp uint8       // 6-bit mod-64 allocation stamp (§3.5)
	src       [2]*dynInst // producers; nil means the operand is ready

	// Execution state (set at select).
	issued     bool
	lane       int
	selectedAt uint64
	depReadyAt uint64 // cycle dependents may be selected (tag broadcast)
	execDoneAt uint64 // execution result produced (branch resolution)
	completeAt uint64 // ready to retire

	retired bool
}

// resetPipelineState clears everything a squash must undo, keeping identity.
func (d *dynInst) resetPipelineState() {
	d.availAt = unknown
	d.pred = tep.Prediction{}
	d.inIQ = false
	d.timestamp = 0
	d.src[0], d.src[1] = nil, nil
	d.issued = false
	d.lane = 0
	// unknown (== obs.NeverIssued) rather than 0: cycle 0 is a valid select
	// time, so KindRetire consumers need a distinct never-issued sentinel.
	d.selectedAt = unknown
	d.depReadyAt = unknown
	d.execDoneAt = unknown
	d.completeAt = unknown
	d.retired = false
}

// operandsReady reports whether both sources are available at cycle, and
// clears producer links that have broadcast (so retired producers can be
// collected).
func (d *dynInst) operandsReady(cycle uint64) bool {
	ready := true
	for k := 0; k < 2; k++ {
		p := d.src[k]
		if p == nil {
			continue
		}
		if p.depReadyAt <= cycle {
			d.src[k] = nil
			continue
		}
		ready = false
	}
	return ready
}

// predictedAt reports whether the TEP predicted a violation for this
// instruction in the given stage.
func (d *dynInst) predictedAt(stage isa.Stage) bool {
	return d.pred.Fault && d.pred.Stage == stage
}

// actualAt reports whether this instruction actually violates in stage
// (ground truth, ignoring handling), accounting for replay safety.
func (d *dynInst) actualAt(stage isa.Stage) bool {
	return d.fault && !d.replaySafe && d.faultStage == stage
}
