package pipeline

import (
	"context"
	"fmt"
	"math"

	"tvsched/internal/bpred"
	"tvsched/internal/core"
	"tvsched/internal/fault"
	"tvsched/internal/isa"
	"tvsched/internal/mem"
	"tvsched/internal/obs"
	"tvsched/internal/tep"
)

// Source supplies the committed dynamic instruction stream (the workload
// generator implements it).
type Source interface {
	Next() isa.Inst
}

// FaultOracle decides which dynamic instructions violate timing in which
// stages. fault.Model is the production implementation; tests inject
// deterministic oracles to exercise specific handling paths.
type FaultOracle interface {
	// Violates reports whether dynamic instance seq of the instruction at
	// pc incurs a timing violation in stage under env.
	Violates(pc uint64, stage isa.Stage, env *fault.Env, seq uint64) bool
	// Margin returns the (µ+2σ)/Tclk criticality of the paths pc sensitizes
	// in stage, used to pick the dominant stage when several violate.
	Margin(pc uint64, stage isa.Stage) float64
}

// Pipeline is the simulated machine.
type Pipeline struct {
	cfg   Config
	src   Source
	model FaultOracle
	env   *fault.Env
	hier  *mem.Hierarchy
	bp    *bpred.Predictor
	noise *bpred.OracleNoise
	tep   tep.Predictor
	fusr  *core.FUSR
	cdl   core.CDL

	// obs, when non-nil, receives the typed event stream; every emission
	// site is guarded by a nil check so the uninstrumented hot loop pays
	// only an untaken branch.
	obs          obs.Observer
	samplePeriod uint64

	// scheme is the handling scheme currently in force: cfg.Scheme unless
	// the supervisor has escalated. All runtime decisions consult this, not
	// cfg.Scheme, so escalation takes effect at the next cycle's stages.
	scheme core.Scheme

	// Graceful-degradation supervisor (nil when Config.Supervisor is nil;
	// every touch point is guarded so an unsupervised run pays one untaken
	// branch per cycle and is bit-identical to the pre-supervisor machine).
	sup         *core.Supervisor
	supWinStart uint64      // cycle the current monitoring window opened
	supPrev     supSnapshot // counter snapshot at the window open
	supSavedVDD float64     // supply to restore when leaving the top rung
	supHot      uint64      // unpredicted count that closes a window early

	cycle uint64
	seq   uint64
	stats Stats

	// Front end. frontQ is a fixed-capacity ring (len == cfg.FrontQ):
	// occupied slots are [frontHead, frontHead+frontCount) modulo the length.
	// A ring instead of an appended-and-resliced slice keeps dispatch's
	// pop-front from shedding capacity and forcing fetch to reallocate.
	frontQ         []*dynInst
	frontHead      int
	frontCount     int
	pendingNew     *dynInst
	fetchResumeAt  uint64
	fetchBlockedBy *dynInst
	lastFetchLine  uint64
	fetchLimit     uint64
	newFetched     uint64

	// Out-of-order engine.
	rob      []*dynInst // ring buffer
	robHead  int
	robCount int
	iq       []*dynInst
	iqAlloc  uint8
	writers  [isa.NumArchRegs]*dynInst
	freePhys int
	loads    int
	stores   int
	storeAt  map[uint64]int // in-flight store addresses (LSQ forwarding CAM)

	// Violation handling. The *Replay counters track the subset of queued
	// freeze cycles owed to replay recovery (vs predicted-violation
	// padding), so stall-cycle events carry their cause.
	globalFreeze       int
	globalFreezeReplay int
	frontFreeze        int
	frontFreezeReplay  int
	replayQ            []*dynInst // re-fetch queue (full-flush recovery)
	pendingFlush       *dynInst   // oldest instruction awaiting a flush

	// pendingIFetch accumulates instruction-cache stall cycles to report
	// on the next KindFetch event (only maintained while an observer is
	// attached).
	pendingIFetch uint64

	cands []core.Candidate // select-stage scratch

	// dynInst recycling. The steady-state cycle loop must not allocate (the
	// checkpointed-sweep throughput gate depends on it), so dynInst records
	// come from a pre-sized free list and return to it after retirement.
	// pendingFree holds the instructions retired this cycle; recycleRetired
	// moves them to freeList at the top of the next cycle, by which point no
	// queue or wakeup link can still reference them (see recycleRetired).
	freeList    []*dynInst
	pendingFree []*dynInst
}

// New builds a pipeline running the given scheme at supply voltage vdd.
// model is typically *fault.Model (see internal/fault).
func New(cfg Config, src Source, model FaultOracle, vdd float64) (*Pipeline, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := &Pipeline{
		cfg:           cfg,
		src:           src,
		model:         model,
		env:           fault.NewEnv(vdd, cfg.Seed),
		hier:          mem.NewHierarchy(cfg.Hierarchy),
		bp:            bpred.New(bpred.DefaultConfig()),
		noise:         bpred.NewOracleNoise(cfg.MispredictRate, cfg.Seed^0xbad),
		tep:           newPredictor(cfg),
		fusr:          core.NewFUSR(cfg.SimpleALUs, cfg.ComplexALUs, cfg.MemPorts),
		cdl:           core.CDL{CT: cfg.CT},
		rob:           make([]*dynInst, cfg.ROBSize),
		frontQ:        make([]*dynInst, cfg.FrontQ),
		iq:            make([]*dynInst, 0, cfg.IQSize),
		cands:         make([]core.Candidate, 0, cfg.IQSize),
		freePhys:      cfg.NumPhys - isa.NumArchRegs,
		storeAt:       make(map[uint64]int),
		lastFetchLine: ^uint64(0),
		samplePeriod:  cfg.SamplePeriod,
		scheme:        cfg.Scheme,
	}
	// dynInst arena: in the default (selective-replay) recovery mode at most
	// ROBSize + FrontQ instructions are resident, plus one pending fetch, one
	// deferred fetch blocker, and a retire group awaiting recycling. Full-flush
	// recovery can briefly exceed this via the re-fetch queue; allocDyn then
	// falls back to the heap, so the bound only needs to cover the fast path.
	arenaCap := cfg.ROBSize + cfg.FrontQ + cfg.Width + 2
	arena := make([]dynInst, arenaCap)
	p.freeList = make([]*dynInst, arenaCap)
	for i := range arena {
		p.freeList[i] = &arena[i]
	}
	p.pendingFree = make([]*dynInst, 0, cfg.Width+1)
	if p.samplePeriod == 0 {
		p.samplePeriod = 64
	}
	if cfg.Supervisor != nil {
		p.sup = core.NewSupervisor(cfg.Scheme, *cfg.Supervisor)
		// A full window's worth of unpredicted violations is proof of hazard
		// regardless of how few cycles it took to accumulate; crossing this
		// count closes the window early so escalation is reactive. This is
		// what bounds the cost of a burned de-escalation probe: the machine
		// climbs back up after ~supHot violations instead of suffering a full
		// window at the lower rung.
		p.supHot = uint64(math.Ceil(cfg.Supervisor.EscalateUnpred * float64(cfg.Supervisor.Window)))
		if p.supHot == 0 {
			p.supHot = 1
		}
	}
	p.SetObserver(cfg.Observer)
	return p, nil
}

// SetObserver attaches (or, with nil, detaches) the event observer. It also
// wires the FUSR slot-freeze path and the TEP predict/train path, so one call
// instruments the whole machine. Safe to call between runs — e.g. to start
// tracing only after warmup.
func (p *Pipeline) SetObserver(o obs.Observer) {
	p.obs = o
	p.fusr.SetObserver(o)
	if t, ok := p.tep.(*tep.TEP); ok {
		t.Obs = o
	}
}

func newPredictor(cfg Config) tep.Predictor {
	if cfg.NewPredictor != nil {
		return cfg.NewPredictor()
	}
	return tep.New(cfg.TEP)
}

// Env exposes the operating environment (for tests/diagnostics).
func (p *Pipeline) Env() *fault.Env { return p.env }

// TEPStats exposes predictor activity counters (zero for non-table
// predictors).
func (p *Pipeline) TEPStats() tep.Stats {
	if t, ok := p.tep.(*tep.TEP); ok {
		return t.Stats
	}
	return tep.Stats{}
}

// PrefillData installs a data range into the L2 (see mem.Hierarchy.Prefill).
func (p *Pipeline) PrefillData(base, size uint64) {
	p.hier.Prefill(base, size)
}

// Warmup simulates n committed instructions and then discards all
// statistics while keeping micro-architectural state: cache contents, branch
// predictor, and TEP training survive. This mirrors the SimPoint methodology
// of §4.2, where representative phases are measured after warmup rather than
// from a cold machine.
func (p *Pipeline) Warmup(n uint64) error {
	return p.WarmupContext(context.Background(), n)
}

// WarmupContext is Warmup with cancellation (see RunContext).
func (p *Pipeline) WarmupContext(ctx context.Context, n uint64) error {
	if _, err := p.RunContext(ctx, n); err != nil {
		return err
	}
	p.stats = Stats{}
	// Observer-side residue must not cross the reset: trailing warmup
	// icache-stall cycles would otherwise be charged to the first measured
	// KindFetch event and pollute its CPI icache component.
	p.pendingIFetch = 0
	p.hier.L1I.Stats = mem.CacheStats{}
	p.hier.L1D.Stats = mem.CacheStats{}
	p.hier.L2.Stats = mem.CacheStats{}
	if t, ok := p.tep.(*tep.TEP); ok {
		t.Stats = tep.Stats{}
	}
	p.bp.Stats = bpred.Stats{}
	// Supervision history must not leak across the measurement boundary:
	// re-open the monitoring window against the zeroed counters and return
	// to the base rung (restoring the saved supply if warmup escalated to
	// the top).
	if p.sup != nil {
		if p.sup.Level() == core.NumSupLevels-1 {
			p.env.SetVDD(p.supSavedVDD)
		}
		p.sup.Reset()
		p.scheme = p.cfg.Scheme
		p.supWinStart = p.cycle
		p.supPrev = supSnapshot{}
	}
	return nil
}

// Run simulates until n further instructions commit and returns the
// statistics accumulated since construction or the last Warmup. It returns
// an error if forward progress stops (a model bug, guarded so tests fail
// loudly rather than hang).
func (p *Pipeline) Run(n uint64) (Stats, error) {
	return p.RunContext(context.Background(), n)
}

// RunContext is Run with cancellation: it polls ctx every 256 cycles (cheap
// enough to be invisible, frequent enough that cancellation lands within
// microseconds of wall time) and returns the context's error along with the
// statistics accumulated so far. The 256-cycle bound is load-bearing for the
// serving layer's deadline propagation and is pinned by a latency test —
// tighten rather than loosen it.
func (p *Pipeline) RunContext(ctx context.Context, n uint64) (Stats, error) {
	if err := ctx.Err(); err != nil {
		return p.stats, err
	}
	p.fetchLimit += n
	target := p.stats.Committed + n
	lastCommit, lastCommitCycle := p.stats.Committed, p.cycle
	for p.stats.Committed < target {
		p.step()
		if p.cfg.Debug {
			if err := p.CheckInvariants(); err != nil {
				return p.stats, fmt.Errorf("pipeline: cycle %d: %w", p.cycle, err)
			}
		}
		if p.cycle&255 == 0 {
			if err := ctx.Err(); err != nil {
				return p.stats, err
			}
		}
		if p.stats.Committed != lastCommit {
			lastCommit, lastCommitCycle = p.stats.Committed, p.cycle
		} else if p.sup != nil && p.sup.Policy().WatchdogCycles > 0 &&
			p.cycle-lastCommitCycle > p.sup.Policy().WatchdogCycles {
			// No forward progress: the supervisor's watchdog jumps to the
			// top rung (replay-everything at the safe supply) instead of
			// aborting. The silence clock restarts so the recovery gets a
			// full watchdog period to take effect; a trip with no budget (or
			// already at the top rung, where there is nothing left to try)
			// falls through to the hard error below.
			d, ok := p.sup.Watchdog()
			if !ok {
				return p.stats, fmt.Errorf("pipeline: no commit for %d cycles at cycle %d with watchdog exhausted (%d/%d committed)",
					p.sup.Policy().WatchdogCycles, p.cycle, p.stats.Committed, target)
			}
			p.applySupervisor(d)
			lastCommitCycle = p.cycle
		} else if p.cycle-lastCommitCycle > 200000 {
			// Committed is cumulative across runs, so report against the
			// cumulative target, not this call's n.
			return p.stats, fmt.Errorf("pipeline: no commit for 200k cycles at cycle %d (%d/%d committed)",
				p.cycle, p.stats.Committed, target)
		}
	}
	// Every fetched instruction must commit for the loop to end (fetchLimit
	// accumulates to exactly the commit target), so a successful run always
	// leaves the machine drained.
	if p.cfg.Debug {
		if err := p.CheckDrained(); err != nil {
			return p.stats, fmt.Errorf("pipeline: end of run at cycle %d: %w", p.cycle, err)
		}
	}
	p.stats.L1I = p.hier.L1I.Stats
	p.stats.L1D = p.hier.L1D.Stats
	p.stats.L2 = p.hier.L2.Stats
	return p.stats, nil
}

// supSnapshot is the counter state at a monitoring-window open; window
// samples are deltas against it.
type supSnapshot struct {
	mispredicted uint64
	predicted    uint64
	falsePos     uint64
}

// superviseWindow closes the current monitoring window, feeds its health
// counters through the supervisor, and applies any level change.
func (p *Pipeline) superviseWindow() {
	w := core.WindowSample{
		Cycles:          p.cycle - p.supWinStart,
		Unpredicted:     p.stats.Mispredicted - p.supPrev.mispredicted,
		Predictions:     (p.stats.PredictedFaults - p.supPrev.predicted) + (p.stats.FalsePositives - p.supPrev.falsePos),
		TruePredictions: p.stats.PredictedFaults - p.supPrev.predicted,
	}
	p.supWinStart = p.cycle
	p.supPrev = supSnapshot{
		mispredicted: p.stats.Mispredicted,
		predicted:    p.stats.PredictedFaults,
		falsePos:     p.stats.FalsePositives,
	}
	if d, changed := p.sup.Observe(w); changed {
		p.applySupervisor(d)
	}
}

// applySupervisor puts a supervisor decision into effect: switch the active
// scheme to the new rung's, move the supply when the top rung is entered or
// left, bump the transition counters, and emit the KindSupervisor event the
// Auditor reconciles against them.
func (p *Pipeline) applySupervisor(d core.SupDecision) {
	const top = core.NumSupLevels - 1
	if d.To == top && d.From != top {
		p.supSavedVDD = p.env.VDD()
		p.env.SetVDD(p.sup.Policy().VSafe)
	} else if d.From == top && d.To != top {
		p.env.SetVDD(p.supSavedVDD)
	}
	p.scheme = p.sup.SchemeAt(d.To)
	switch {
	case d.Reason == core.SupReasonWatchdog:
		p.stats.SupWatchdogFires++
	case d.To > d.From:
		p.stats.SupEscalations++
	default:
		p.stats.SupDeescalations++
	}
	if p.obs != nil {
		p.obs.Event(obs.Event{Kind: obs.KindSupervisor, Cycle: p.cycle,
			A: uint64(d.From), B: uint64(d.To), C: uint64(d.Reason)})
	}
}

// step advances the machine one clock cycle. Stages run in reverse pipe
// order so that resources freed in a cycle become visible the next.
func (p *Pipeline) step() {
	p.cycle++
	p.stats.Cycles++
	if len(p.pendingFree) > 0 {
		p.recycleRetired()
	}
	p.env.Step()

	if p.sup != nil {
		if p.cycle-p.supWinStart >= p.sup.Policy().Window ||
			(p.sup.Level() < core.NumSupLevels-1 &&
				p.stats.Mispredicted-p.supPrev.mispredicted >= p.supHot) {
			p.superviseWindow()
		}
	}

	// Occupancy samples fire on a fixed cadence even through stall cycles —
	// the window contents are frozen, not gone, and gaps in the series would
	// hide exactly the congested phases worth looking at.
	if p.obs != nil && p.cycle%p.samplePeriod == 0 {
		p.obs.Event(obs.Event{Kind: obs.KindSample, Cycle: p.cycle,
			A: uint64(len(p.iq)), B: uint64(p.robCount)})
	}

	// Occupancy sums accumulate every cycle, stall cycles included: the
	// window contents are frozen, not gone, and MeanIQOcc/MeanROBOcc divide
	// by total Cycles. Skipping stall cycles would understate occupancy for
	// stall-heavy schemes (EP) and disagree with the KindSample series.
	p.stats.SumIQOcc += uint64(len(p.iq))
	p.stats.SumROBOcc += uint64(p.robCount)
	p.stats.SumFrontQ += uint64(p.frontCount)

	// EP whole-pipeline stall: the faulty stage completes in two cycles
	// while every other stage recirculates its inputs (§2.2, §5). The stall
	// is a true machine-wide freeze — every in-flight completion, including
	// outstanding cache fills, slips by the stall cycle.
	if p.globalFreeze > 0 {
		p.globalFreeze--
		p.stats.GlobalStalls++
		if p.obs != nil {
			cause := obs.StallCausePad
			if p.globalFreezeReplay > 0 {
				p.globalFreezeReplay--
				cause = obs.StallCauseReplay
			}
			p.obs.Event(obs.Event{Kind: obs.KindGlobalStall, Cycle: p.cycle, A: cause})
		} else if p.globalFreezeReplay > 0 {
			p.globalFreezeReplay--
		}
		p.shiftInFlight()
		return
	}

	if p.pendingFlush != nil {
		di := p.pendingFlush
		p.pendingFlush = nil
		p.flushReplay(di)
	}
	p.retire()
	p.selectIssue()

	// In-order-engine stall (§2.2): rename/dispatch/retire recirculate for
	// one cycle; the OoO engine above keeps running.
	if p.frontFreeze > 0 {
		p.frontFreeze--
		p.stats.FrontStalls++
		if p.obs != nil {
			cause := obs.StallCausePad
			if p.frontFreezeReplay > 0 {
				p.frontFreezeReplay--
				cause = obs.StallCauseReplay
			}
			p.obs.Event(obs.Event{Kind: obs.KindFrontStall, Cycle: p.cycle, A: cause})
		} else if p.frontFreezeReplay > 0 {
			p.frontFreezeReplay--
		}
		return
	}
	p.dispatch()
	p.fetch()
}

// emitViolation fires the KindViolationActual/KindReplay pair that every
// unpredicted-violation recovery produces, so event counts track the
// Mispredicted/Replays statistics exactly. bubble is the recovery stall in
// cycles; private is the errant instruction's extra replay latency; direct
// is any recovery cost in issue slots not otherwise visible as stall-cycle
// events (the fetch-path replay bubble). Callers guard on p.obs != nil.
func (p *Pipeline) emitViolation(di *dynInst, stage isa.Stage, bubble, private, direct uint64) {
	p.obs.Event(obs.Event{Kind: obs.KindViolationActual, Cycle: p.cycle,
		Seq: di.seq, PC: di.in.PC, Stage: stage, Class: di.in.Class})
	p.obs.Event(obs.Event{Kind: obs.KindReplay, Cycle: p.cycle,
		Seq: di.seq, PC: di.in.PC, Stage: stage, Class: di.in.Class,
		A: bubble, B: private, C: direct})
}

// emitPredicted fires a KindViolationPredicted event; A records whether the
// prediction was a true positive, B the response the scheme chose. Callers
// guard on p.obs != nil.
func (p *Pipeline) emitPredicted(di *dynInst, stage isa.Stage, actual bool, act core.Action) {
	var a uint64
	if actual {
		a = 1
	}
	p.obs.Event(obs.Event{Kind: obs.KindViolationPredicted, Cycle: p.cycle,
		Seq: di.seq, PC: di.in.PC, Stage: stage, Class: di.in.Class,
		A: a, B: uint64(act)})
}

// emitDispatchStall fires a KindDispatchStall event when a back-end resource
// shortage cuts the dispatch group short: A is the blocking resource, B the
// dispatch budget (slots) left unused this cycle.
func (p *Pipeline) emitDispatchStall(cause uint64, budget int) {
	if p.obs == nil {
		return
	}
	p.obs.Event(obs.Event{Kind: obs.KindDispatchStall, Cycle: p.cycle,
		A: cause, B: uint64(budget)})
}

// ------------------------------------------------------- dynInst recycling --

// allocDyn takes a record from the free list, falling back to the heap when
// the arena bound is exceeded (only possible under full-flush recovery).
func (p *Pipeline) allocDyn() *dynInst {
	if n := len(p.freeList) - 1; n >= 0 {
		di := p.freeList[n]
		p.freeList[n] = nil
		p.freeList = p.freeList[:n]
		return di
	}
	return &dynInst{}
}

// recycleRetired returns the instructions retired last cycle to the free
// list. Deferring the recycle one cycle makes it provably safe: by the top of
// the cycle after retirement no live structure references a retired record —
// wakeup's operandsReady sweep clears broadcast src links the cycle the
// producer's result is ready (strictly before it can retire), the rename map
// entry is cleared at retirement, and the re-fetch/flush queues only ever
// hold squashed (never retired) instructions. The one remaining reference is
// the fetch redirect blocker, which stays deferred here until fetch drops it.
func (p *Pipeline) recycleRetired() {
	kept := p.pendingFree[:0]
	for _, di := range p.pendingFree {
		if di == p.fetchBlockedBy {
			kept = append(kept, di)
			continue
		}
		p.freeList = append(p.freeList, di)
	}
	p.pendingFree = kept
}

// ------------------------------------------------------- front-end ring --

func (p *Pipeline) frontPush(di *dynInst) {
	p.frontQ[(p.frontHead+p.frontCount)%len(p.frontQ)] = di
	p.frontCount++
}

func (p *Pipeline) frontPop() {
	p.frontQ[p.frontHead] = nil
	p.frontHead = (p.frontHead + 1) % len(p.frontQ)
	p.frontCount--
}

// frontAt returns the i-th queued instruction in fetch order (0 is oldest).
func (p *Pipeline) frontAt(i int) *dynInst {
	return p.frontQ[(p.frontHead+i)%len(p.frontQ)]
}

// ---------------------------------------------------------------- fetch --

// newDyn pulls the next instruction from the trace and fixes its dynamic
// identity: fault ground truth (which stage, if any, its sensitized paths
// violate in at the current voltage) and the oracle branch outcome.
func (p *Pipeline) newDyn() *dynInst {
	in := p.src.Next()
	di := p.allocDyn()
	*di = dynInst{seq: p.seq, in: in}
	p.seq++
	di.resetPipelineState()

	// Ground truth: the most critical violating stage, if any.
	bestMargin := 0.0
	for s := isa.Fetch; s < isa.NumStages; s++ {
		if s == isa.Memory && !in.Class.IsMem() {
			continue
		}
		if p.model.Violates(in.PC, s, p.env, di.seq) {
			if mg := p.model.Margin(in.PC, s); mg > bestMargin {
				bestMargin = mg
				di.fault = true
				di.faultStage = s
			}
		}
	}
	if di.fault {
		p.stats.Faults++
		p.stats.FaultsByStage[di.faultStage]++
	}

	// Branch outcome and predictor training happen once, at first fetch.
	if in.Class == isa.Branch {
		p.bp.Update(in.PC, in.Taken, in.Target)
		if p.noise.Mispredict() {
			di.mispredict = true
			p.stats.BranchMispredicts++
		}
	}
	return di
}

// peekFetch returns the next instruction to fetch without consuming it:
// squashed instructions awaiting re-fetch first, then fresh trace
// instructions up to the run's fetch limit.
func (p *Pipeline) peekFetch() *dynInst {
	if len(p.replayQ) > 0 {
		return p.replayQ[0]
	}
	if p.pendingNew == nil && p.newFetched < p.fetchLimit {
		p.pendingNew = p.newDyn()
	}
	return p.pendingNew
}

func (p *Pipeline) consumeFetch(di *dynInst) {
	if len(p.replayQ) > 0 && p.replayQ[0] == di {
		p.replayQ = p.replayQ[1:]
		return
	}
	p.pendingNew = nil
	p.newFetched++
}

func (p *Pipeline) fetch() {
	if p.cycle < p.fetchResumeAt {
		return
	}
	if p.fetchBlockedBy != nil {
		// Waiting on a mispredicted branch to resolve in execute; redirect
		// the cycle after resolution.
		if p.fetchBlockedBy.execDoneAt != unknown && p.fetchBlockedBy.execDoneAt <= p.cycle {
			p.fetchBlockedBy = nil
			p.fetchResumeAt = p.cycle + 1
		}
		return
	}
	for budget := p.cfg.Width; budget > 0 && p.frontCount < p.cfg.FrontQ; budget-- {
		di := p.peekFetch()
		if di == nil {
			return
		}
		// Instruction cache: charge the miss latency when crossing into a
		// new line that is not resident.
		if line := di.in.PC >> 6; line != p.lastFetchLine {
			lat := p.hier.InstAccess(di.in.PC)
			p.lastFetchLine = line
			if lat > 1 {
				p.fetchResumeAt = p.cycle + uint64(lat)
				if p.obs != nil {
					p.pendingIFetch += uint64(lat)
				}
				return
			}
		}
		// Violations in fetch/decode cannot be predicted by the TEP and are
		// recovered by replay (§2.2); here the instruction simply has not
		// left the front end, so recovery is a fetch bubble. Under a deep
		// hazard the replay itself can fail (ReplayReliable), in which case
		// the same instruction faults again on the next fetch attempt.
		if !di.replaySafe && di.fault && di.faultStage.ReplayOnly() {
			di.replaySafe = p.env.ReplayReliable()
			p.stats.Mispredicted++
			p.stats.Replays++
			if p.obs != nil {
				// The bubble stalls only the front end and produces no
				// stall-cycle events; charge it directly on the replay.
				bubble := uint64(p.cfg.ReplayBubble)
				p.emitViolation(di, di.faultStage, bubble, 0, bubble*uint64(p.cfg.Width))
			}
			p.fetchResumeAt = p.cycle + uint64(p.cfg.ReplayBubble) + 1
			return
		}
		p.consumeFetch(di)
		p.stats.Fetched++
		if p.obs != nil {
			var mp uint64
			if di.mispredict {
				mp = 1
			}
			p.obs.Event(obs.Event{Kind: obs.KindFetch, Cycle: p.cycle,
				Seq: di.seq, PC: di.in.PC, Class: di.in.Class,
				A: mp, B: p.pendingIFetch})
			p.pendingIFetch = 0
		}
		di.availAt = p.cycle + uint64(p.cfg.FrontDepth)
		di.history = p.bp.History()
		// TEP access in parallel with decode (§2.1.1).
		if p.scheme.UsesTEP() {
			di.pred = p.tep.Lookup(di.in.PC, di.history, p.env.Favorable())
		}
		p.frontPush(di)
		if di.mispredict {
			p.fetchBlockedBy = di
			return
		}
	}
}

// -------------------------------------------------------------- dispatch --

func (p *Pipeline) dispatch() {
	for budget := p.cfg.Width; budget > 0 && p.frontCount > 0; budget-- {
		di := p.frontQ[p.frontHead]
		if di.availAt > p.cycle {
			return
		}
		if p.robCount == p.cfg.ROBSize {
			p.stats.StallROB++
			p.emitDispatchStall(obs.DispatchStallROB, budget)
			return
		}
		if len(p.iq) >= p.cfg.IQSize {
			p.stats.StallIQ++
			p.emitDispatchStall(obs.DispatchStallIQ, budget)
			return
		}
		switch di.in.Class {
		case isa.Load:
			if p.loads >= p.cfg.LQSize {
				p.stats.StallLSQ++
				p.emitDispatchStall(obs.DispatchStallLSQ, budget)
				return
			}
		case isa.Store:
			if p.stores >= p.cfg.SQSize {
				p.stats.StallLSQ++
				p.emitDispatchStall(obs.DispatchStallLSQ, budget)
				return
			}
		}
		if di.in.Dest > 0 && p.freePhys == 0 {
			p.stats.StallPhys++
			p.emitDispatchStall(obs.DispatchStallPhys, budget)
			return
		}

		// In-order-engine violations at rename/dispatch (§2.2).
		for _, st := range [2]isa.Stage{isa.Rename, isa.Dispatch} {
			if p.scheme.UsesTEP() && di.predictedAt(st) {
				act := core.Respond(p.scheme, true, st)
				switch act {
				case core.ActFrontStall:
					p.frontFreeze++
				case core.ActGlobalStall:
					p.globalFreeze++
				}
				actual := di.actualAt(st)
				if actual {
					p.stats.PredictedFaults++
					di.replaySafe = true // stall gave the stage its 2nd cycle
				} else {
					p.stats.FalsePositives++
				}
				if p.obs != nil {
					p.emitPredicted(di, st, actual, act)
				}
			} else if di.actualAt(st) {
				p.recoverInOrder(di)
				return
			}
		}

		p.frontPop()
		di.inIQ = true
		di.timestamp = p.iqAlloc & core.TimestampMask
		p.iqAlloc++
		// Register rename: link sources to in-flight producers.
		for k, reg := range [2]int8{di.in.Src1, di.in.Src2} {
			if reg > 0 {
				if w := p.writers[reg]; w != nil && w.depReadyAt > p.cycle {
					di.src[k] = w
				}
			}
		}
		if di.in.Dest > 0 {
			p.writers[di.in.Dest] = di
			p.freePhys--
		}
		p.robPush(di)
		p.iq = append(p.iq, di)
		switch di.in.Class {
		case isa.Load:
			p.loads++
		case isa.Store:
			p.stores++
			p.storeAt[di.in.Addr]++
		}
		p.stats.Dispatched++
		if p.obs != nil {
			p.obs.Event(obs.Event{Kind: obs.KindDispatch, Cycle: p.cycle,
				Seq: di.seq, PC: di.in.PC, Class: di.in.Class})
		}
	}
}

// ---------------------------------------------------------------- issue --

func laneKind(c isa.Class) core.FUKind {
	return core.KindFor(c.IsMem(), c == isa.IntMul || c == isa.IntDiv)
}

// selectIssue is the wakeup/select stage with the SLE of §3.5.1: operand-
// ready entries bid, the policy sets grant lines, and the FUSR gates lane
// availability.
func (p *Pipeline) selectIssue() {
	p.cands = p.cands[:0]
	for i, di := range p.iq {
		if di.operandsReady(p.cycle) {
			p.cands = append(p.cands, core.Candidate{
				Index:     i,
				Timestamp: di.timestamp,
				Faulty:    di.pred.Fault,
				Critical:  di.pred.Critical,
			})
		}
	}
	p.stats.SumReadyCands += uint64(len(p.cands))
	if len(p.cands) == 0 {
		return
	}
	core.Order(p.scheme.Policy(), p.cands, p.iqAlloc&core.TimestampMask)
	grants := 0
	for _, c := range p.cands {
		if grants == p.cfg.Width {
			break
		}
		di := p.iq[c.Index]
		lane := p.fusr.Available(laneKind(di.in.Class), p.cycle)
		if lane < 0 {
			continue
		}
		p.issueInst(di, lane)
		grants++
	}
	if grants > 0 {
		kept := p.iq[:0]
		for _, di := range p.iq {
			if !di.issued {
				kept = append(kept, di)
			}
		}
		p.iq = kept
	}
}

// issueInst schedules di on lane at the current cycle, applying the
// violation-aware handling of §3.2/§3.3 for every OoO stage it will
// traverse, and computes its timing.
func (p *Pipeline) issueInst(di *dynInst, lane int) {
	t := p.cycle
	di.issued = true
	di.inIQ = false
	di.selectedAt = t
	di.lane = lane
	p.stats.Selected++

	isMem := di.in.Class.IsMem()
	var extra [isa.NumStages]uint64
	var bcastDelay uint64 // confined extra cycles ahead of the tag broadcast
	issueFreeze := false  // issue-stage CAM fault: slot freeze is the only cost
	replayStage := isa.NumStages

	p.handleStage(di, isa.Issue, &extra, &bcastDelay, &issueFreeze, &replayStage)
	p.handleStage(di, isa.RegRead, &extra, &bcastDelay, &issueFreeze, &replayStage)
	p.handleStage(di, isa.Execute, &extra, &bcastDelay, &issueFreeze, &replayStage)
	if isMem {
		p.handleStage(di, isa.Memory, &extra, &bcastDelay, &issueFreeze, &replayStage)
	}
	p.handleStage(di, isa.Writeback, &extra, &bcastDelay, &issueFreeze, &replayStage)

	// Unpredicted violation: Razor-style error recovery (§2.1.2). The
	// shadow-latch path corrects the errant computation and the instruction
	// replays through the faulty stage; recovery control inserts pipeline
	// bubbles while the replay is set up. Modeled as ReplayLatency extra
	// cycles on the instruction (its dependents wait for the replayed
	// result) plus a ReplayBubble whole-pipeline recovery stall. This is
	// calibrated to the Razor overheads of Table 1; a full flush-and-refetch
	// recovery overshoots the paper's measured Razor cost substantially.
	if replayStage != isa.NumStages {
		if p.cfg.FullFlushReplay {
			// Architectural replay: squash from the errant instruction and
			// re-fetch. Deferred to the top of the next cycle so the issue
			// loop's view of the queue stays stable.
			if p.pendingFlush == nil || di.seq < p.pendingFlush.seq {
				p.pendingFlush = di
			}
		} else {
			extra[replayStage] += uint64(p.cfg.ReplayLatency)
			p.globalFreeze += p.cfg.ReplayBubble
			p.globalFreezeReplay += p.cfg.ReplayBubble
			p.stats.Replays++
			p.stats.Mispredicted++
			di.replaySafe = p.env.ReplayReliable()
			if p.obs != nil {
				p.emitViolation(di, replayStage, uint64(p.cfg.ReplayBubble),
					uint64(p.cfg.ReplayLatency), 0)
			}
			if p.scheme.UsesTEP() {
				p.tep.Train(di.in.PC, di.history, true, di.faultStage)
			}
		}
	}

	// Timing. Selected at t; register read at t+1; execution and (for
	// memory ops) the D-cache/LSQ follow; dependents wake via tag broadcast
	// (delayed one cycle per confined violation up to the broadcast, §3.2.2).
	exLat, pipelined := di.in.Class.Latency()
	rrDone := t + 1 + extra[isa.Issue] + extra[isa.RegRead]
	execDone := rrDone + uint64(exLat) + extra[isa.Execute]
	var loadLat uint64 // data-access latency for loads (KindIssue payload C)
	if isMem {
		memLat := uint64(1)
		if di.in.Class == isa.Load {
			switch {
			case di.fillAt != 0:
				// Re-execution after a squash: the original miss is still
				// being serviced (or already filled); pay only the remainder.
				if execDone < di.fillAt {
					memLat = di.fillAt - execDone
				}
			case p.storeAt[di.in.Addr] > 0:
				di.fillAt = execDone + 1 // store-to-load forward
			default:
				memLat = uint64(p.hier.DataAccess(di.in.Addr))
				di.fillAt = execDone + memLat
			}
			loadLat = memLat
		}
		memDone := execDone + memLat + extra[isa.Memory]
		di.depReadyAt = memDone
		di.completeAt = memDone + 1 + extra[isa.Writeback]
	} else {
		di.depReadyAt = execDone - 1
		di.completeAt = execDone + 1 + extra[isa.Writeback]
	}
	di.execDoneAt = execDone

	// Functional-unit and slot management (§3.2.3, §3.3).
	faultyHold := issueFreeze || extra[isa.Issue]+extra[isa.Execute] > 0
	p.fusr.Issue(lane, t, exLat, pipelined, faultyHold)
	if faultyHold {
		p.stats.SlotFreezes++
	}
	if extra[isa.RegRead] > 0 {
		// Register-read port blocked one additional cycle (§3.3.2).
		p.fusr.Freeze(lane, rrDone)
		p.stats.SlotFreezes++
	}
	if isMem && extra[isa.Memory] > 0 {
		// No load/store CAM match right behind the faulty one (§3.3.4).
		p.fusr.Freeze(lane, execDone+1)
		p.stats.SlotFreezes++
	}
	if extra[isa.Writeback] > 0 {
		// Writeback input slot recirculates (§3.3.5).
		p.fusr.Freeze(lane, di.completeAt-1)
		p.stats.SlotFreezes++
	}

	if di.in.Dest > 0 {
		p.stats.Broadcasts++
		if p.obs != nil && bcastDelay > 0 {
			p.obs.Event(obs.Event{Kind: obs.KindDelayedBroadcast, Cycle: p.cycle,
				Seq: di.seq, PC: di.in.PC, Class: di.in.Class,
				Lane: int16(lane), A: bcastDelay})
		}
	}
	p.stats.ExecByClass[di.in.Class]++

	// Criticality Detection Logic (§3.5.2): count issue-queue tag matches
	// for this producer and store the determination with the TEP. Only the
	// CDS scheme builds this hardware (Table 2).
	if p.scheme == core.CDS && di.in.Dest > 0 {
		matches := 0
		for _, e := range p.iq {
			// p.iq still holds entries granted earlier in this selectIssue
			// pass (compaction happens after the grant loop); issued
			// instructions are not waiting dependents, so only count entries
			// still resident in the queue.
			if !e.inIQ {
				continue
			}
			if e.src[0] == di || e.src[1] == di {
				matches++
			}
		}
		if p.cdl.Critical(matches) {
			p.tep.SetCritical(di.in.PC, di.history, true)
			p.stats.CriticalMarks++
		}
	}

	if p.obs != nil {
		p.obs.Event(obs.Event{Kind: obs.KindIssue, Cycle: t,
			Seq: di.seq, PC: di.in.PC, Class: di.in.Class,
			Lane: int16(lane), A: di.depReadyAt, B: di.completeAt,
			C: loadLat})
	}
}

// handleStage applies the violation-aware handling of §3.2/§3.3 for one OoO
// stage di will traverse, accumulating timing adjustments into the caller's
// locals. A method with out-parameters rather than a closure so the hot
// issue path stays off the heap.
func (p *Pipeline) handleStage(di *dynInst, stage isa.Stage,
	extra *[isa.NumStages]uint64, bcastDelay *uint64, issueFreeze *bool, replayStage *isa.Stage) {
	predicted := p.scheme.UsesTEP() && di.predictedAt(stage)
	actual := di.actualAt(stage)
	if predicted {
		act := core.Respond(p.scheme, true, stage)
		switch act {
		case core.ActConfined:
			if stage == isa.Issue {
				// §3.3.1: the violation is in the wakeup/select CAM.
				// The issue slot for the functional unit freezes for one
				// cycle, so the wakeup lane's inputs stay steady for two
				// cycles and the CAM computation completes. With the
				// two-stage issue of Core-1 (wakeup then select), the
				// extra CAM cycle overlaps the select stage: neither the
				// faulty instruction nor its dependents are delayed —
				// the entire cost is the frozen issue slot. (Contrast
				// execute-stage faults, Figure 2, where the result
				// itself is late and dependents must be held back.)
				*issueFreeze = true
			} else {
				extra[stage] = 1
				if stage != isa.Writeback {
					*bcastDelay++ // dependents wake one cycle later (§3.2.2)
				}
			}
			p.stats.ConfinedEvents++
		case core.ActGlobalStall:
			extra[stage] = 1
			p.globalFreeze++
		}
		if actual {
			p.stats.PredictedFaults++
			di.replaySafe = true // the extra cycle covers the violation
		} else {
			p.stats.FalsePositives++
		}
		if p.obs != nil {
			p.emitPredicted(di, stage, actual, act)
		}
	} else if actual && *replayStage == isa.NumStages {
		*replayStage = stage
	}
}

// --------------------------------------------------------------- replay --

// recoverInOrder handles an unpredicted violation in the in-order engine
// (rename/dispatch): the stage's computation is corrected and re-run while
// the front end recirculates (§2.2); recovery costs a front-end bubble.
func (p *Pipeline) recoverInOrder(di *dynInst) {
	p.stats.Replays++
	p.stats.Mispredicted++
	di.replaySafe = p.env.ReplayReliable()
	if p.obs != nil {
		p.emitViolation(di, di.faultStage, uint64(p.cfg.ReplayBubble), 0, 0)
	}
	p.frontFreeze += p.cfg.ReplayBubble
	p.frontFreezeReplay += p.cfg.ReplayBubble
	if p.scheme.UsesTEP() {
		p.tep.Train(di.in.PC, di.history, true, di.faultStage)
	}
}

// flushReplay performs architectural replay (Config.FullFlushReplay): the
// errant instruction and everything younger are squashed, their resources
// released, and all of them re-fetched in program order.
func (p *Pipeline) flushReplay(di *dynInst) {
	if di.retired || !di.issued {
		return // already squashed by an older flush, or retired
	}
	p.stats.Replays++
	p.stats.Mispredicted++
	di.replaySafe = p.env.ReplayReliable()
	if p.obs != nil {
		p.emitViolation(di, di.faultStage, uint64(p.cfg.ReplayBubble), 0, 0)
	}
	if p.scheme.UsesTEP() {
		p.tep.Train(di.in.PC, di.history, true, di.faultStage)
	}

	// Squash the ROB suffix from di (inclusive), youngest first.
	var squashed []*dynInst
	for p.robCount > 0 {
		tail := p.rob[(p.robHead+p.robCount-1)%p.cfg.ROBSize]
		if tail.seq < di.seq {
			break
		}
		p.robCount--
		p.squash(tail)
		squashed = append(squashed, tail)
	}
	for i, j := 0, len(squashed)-1; i < j; i, j = i+1, j-1 {
		squashed[i], squashed[j] = squashed[j], squashed[i]
	}
	p.stats.SquashedInsts += uint64(len(squashed))
	if p.obs != nil {
		p.obs.Event(obs.Event{Kind: obs.KindFlush, Cycle: p.cycle,
			Seq: di.seq, PC: di.in.PC, Stage: di.faultStage,
			A: uint64(len(squashed)), B: uint64(p.cfg.ReplayBubble)})
	}

	// Front-end instructions are younger than everything in the ROB.
	for i := 0; i < p.frontCount; i++ {
		fq := p.frontAt(i)
		fq.resetPipelineState()
		squashed = append(squashed, fq)
	}
	for i := range p.frontQ {
		p.frontQ[i] = nil
	}
	p.frontHead, p.frontCount = 0, 0
	p.replayQ = append(squashed, p.replayQ...)

	// Rebuild the rename map from the surviving window.
	for r := range p.writers {
		p.writers[r] = nil
	}
	for i := 0; i < p.robCount; i++ {
		e := p.rob[(p.robHead+i)%p.cfg.ROBSize]
		if e.in.Dest > 0 {
			p.writers[e.in.Dest] = e
		}
	}
	// Drop squashed issue-queue entries.
	kept := p.iq[:0]
	for _, e := range p.iq {
		if e.inIQ {
			kept = append(kept, e)
		}
	}
	p.iq = kept

	if p.fetchBlockedBy != nil && p.fetchBlockedBy.seq >= di.seq {
		p.fetchBlockedBy = nil
	}
	p.fetchResumeAt = p.cycle + uint64(p.cfg.ReplayBubble)
}

// squash releases the resources a dispatched instruction holds.
func (p *Pipeline) squash(di *dynInst) {
	if di.inIQ {
		di.inIQ = false // removed from p.iq by the caller's compaction
	}
	if di.in.Dest > 0 {
		p.freePhys++
	}
	switch di.in.Class {
	case isa.Load:
		p.loads--
	case isa.Store:
		p.stores--
		if p.storeAt[di.in.Addr] > 1 {
			p.storeAt[di.in.Addr]--
		} else {
			delete(p.storeAt, di.in.Addr)
		}
	}
	di.resetPipelineState()
}

// --------------------------------------------------------------- retire --

func (p *Pipeline) retire() {
	for budget := p.cfg.Width; budget > 0 && p.robCount > 0; budget-- {
		di := p.rob[p.robHead]
		if !di.issued || di.completeAt == unknown || di.completeAt > p.cycle {
			return
		}
		// Retire-stage violations (§2.2): stall-tolerated when predicted.
		if p.scheme.UsesTEP() && di.predictedAt(isa.Retire) {
			act := core.Respond(p.scheme, true, isa.Retire)
			switch act {
			case core.ActFrontStall:
				p.frontFreeze++
			case core.ActGlobalStall:
				p.globalFreeze++
			}
			actual := di.actualAt(isa.Retire)
			if actual {
				p.stats.PredictedFaults++
				di.replaySafe = true
			} else {
				p.stats.FalsePositives++
			}
			if p.obs != nil {
				p.emitPredicted(di, isa.Retire, actual, act)
			}
		} else if di.actualAt(isa.Retire) {
			// Unpredicted retire-stage violation: correct and re-run the
			// retire cycle; the whole machine waits out the recovery. When
			// the hazard has pushed the delay scale past the replay limit,
			// the re-run fails too and commit stays blocked — the livelock
			// the supervisor's watchdog exists to break.
			p.stats.Replays++
			p.stats.Mispredicted++
			di.replaySafe = p.env.ReplayReliable()
			if p.obs != nil {
				p.emitViolation(di, isa.Retire, uint64(p.cfg.ReplayBubble), 0, 0)
			}
			p.globalFreeze += p.cfg.ReplayBubble
			p.globalFreezeReplay += p.cfg.ReplayBubble
			if p.scheme.UsesTEP() {
				p.tep.Train(di.in.PC, di.history, true, di.faultStage)
			}
			return
		}

		p.robHead = (p.robHead + 1) % p.cfg.ROBSize
		p.robCount--
		di.retired = true
		if di.in.Dest > 0 {
			p.freePhys++
			// Drop the rename-map reference so the record can be recycled.
			// Behaviour-identical: rename only links producers whose result is
			// still pending (depReadyAt > cycle), which a retired instruction
			// never is.
			if p.writers[di.in.Dest] == di {
				p.writers[di.in.Dest] = nil
			}
		}
		switch di.in.Class {
		case isa.Load:
			p.loads--
		case isa.Store:
			p.stores--
			if p.storeAt[di.in.Addr] > 1 {
				p.storeAt[di.in.Addr]--
			} else {
				delete(p.storeAt, di.in.Addr)
			}
			// The store's line is installed at commit; timing is off the
			// critical path but the cache contents matter to later loads.
			p.hier.DataAccess(di.in.Addr)
			p.stats.StoresRetired++
		}
		// Train the TEP with ground truth (2-bit counter learn/decay).
		if p.scheme.UsesTEP() {
			p.tep.Train(di.in.PC, di.history, di.fault, di.faultStage)
		}
		p.stats.Committed++
		if p.obs != nil {
			p.obs.Event(obs.Event{Kind: obs.KindRetire, Cycle: p.cycle,
				Seq: di.seq, PC: di.in.PC, Class: di.in.Class,
				Lane: int16(di.lane), A: di.selectedAt})
		}
		p.pendingFree = append(p.pendingFree, di)
	}
}

// shiftInFlight slips every pending event one cycle later, implementing a
// whole-pipeline recirculation cycle.
func (p *Pipeline) shiftInFlight() {
	shift := func(v *uint64) {
		if *v != unknown && *v > p.cycle {
			*v++
		}
	}
	for i := 0; i < p.robCount; i++ {
		di := p.rob[(p.robHead+i)%p.cfg.ROBSize]
		shift(&di.depReadyAt)
		shift(&di.execDoneAt)
		shift(&di.completeAt)
		if di.fillAt > p.cycle {
			di.fillAt++
		}
	}
	for i := 0; i < p.frontCount; i++ {
		shift(&p.frontAt(i).availAt)
	}
	if p.fetchResumeAt > p.cycle {
		p.fetchResumeAt++
	}
	p.fusr.ShiftAll(p.cycle)
}

// ------------------------------------------------------------------ rob --

func (p *Pipeline) robPush(di *dynInst) {
	p.rob[(p.robHead+p.robCount)%p.cfg.ROBSize] = di
	p.robCount++
}

// SetVDD retargets the operating voltage mid-run (closed-loop DVFS): newly
// fetched instructions see the new fault environment; in-flight work is
// unaffected. While the supervisor holds the top rung the safe supply is
// authoritative: the request becomes the restore target applied when the
// supervisor steps back down, so a DVFS governor cannot undercut an active
// recovery.
func (p *Pipeline) SetVDD(v float64) {
	if p.sup != nil && p.sup.Level() == core.NumSupLevels-1 {
		p.supSavedVDD = v
		return
	}
	p.env.SetVDD(v)
}

// SetHazard attaches (or, with nil, detaches) a hazard timeline on the
// operating environment (see fault.Env.SetHazard).
func (p *Pipeline) SetHazard(h fault.Hazard) { p.env.SetHazard(h) }

// Scheme returns the handling scheme currently in force — cfg.Scheme unless
// the supervisor has escalated.
func (p *Pipeline) Scheme() core.Scheme { return p.scheme }

// Supervisor exposes the graceful-degradation supervisor (nil when
// Config.Supervisor is nil).
func (p *Pipeline) Supervisor() *core.Supervisor { return p.sup }
