package pipeline

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"tvsched/internal/core"
	"tvsched/internal/fault"
	"tvsched/internal/obs"
	"tvsched/internal/workload"
)

// observedRun simulates a faulty sjeng phase with the given observer
// attached from cycle zero (no warmup, so event counts and Stats counters
// cover exactly the same cycles).
func observedRun(t *testing.T, cfg Config, o obs.Observer, seed uint64, n uint64) Stats {
	t.Helper()
	prof := mustProfile(t, "sjeng")
	gen, err := workload.NewGenerator(prof, seed)
	if err != nil {
		t.Fatal(err)
	}
	cfg.MispredictRate = prof.MispredictRate
	cfg.Seed = seed
	cfg.Observer = o
	fc := fault.DefaultConfig(seed)
	fc.Bias = prof.FaultBias
	p, err := New(cfg, gen, fault.New(fc), fault.VHighFault)
	if err != nil {
		t.Fatal(err)
	}
	st, err := p.Run(n)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestObserverEventStatsConsistency pins the contract between the event
// stream and the Stats counters: every counter with a corresponding event
// kind must agree exactly, because each emission site sits next to its
// counter increment.
func TestObserverEventStatsConsistency(t *testing.T) {
	counts := map[obs.Kind]uint64{}
	o := obs.ObserverFunc(func(e obs.Event) { counts[e.Kind]++ })
	st := observedRun(t, DefaultConfig(), o, 1, 30000)

	checks := []struct {
		kind obs.Kind
		want uint64
	}{
		{obs.KindFetch, st.Fetched},
		{obs.KindDispatch, st.Dispatched},
		{obs.KindIssue, st.Selected},
		{obs.KindRetire, st.Committed},
		{obs.KindViolationPredicted, st.PredictedFaults + st.FalsePositives},
		{obs.KindViolationActual, st.Mispredicted},
		{obs.KindReplay, st.Replays},
		{obs.KindSlotFreeze, st.SlotFreezes},
		{obs.KindGlobalStall, st.GlobalStalls},
		{obs.KindFrontStall, st.FrontStalls},
		{obs.KindDispatchStall, st.StallROB + st.StallIQ + st.StallLSQ + st.StallPhys},
	}
	for _, c := range checks {
		if counts[c.kind] != c.want {
			t.Errorf("%v events %d, stats say %d", c.kind, counts[c.kind], c.want)
		}
	}
	if st.Mispredicted == 0 || st.PredictedFaults == 0 || st.SlotFreezes == 0 {
		t.Fatalf("degenerate run, invariants not exercised: %+v", st)
	}
	// Selective replay is the default, so no pipeline flushes fire.
	if counts[obs.KindFlush] != 0 {
		t.Errorf("flush events %d under selective replay", counts[obs.KindFlush])
	}
	// One occupancy sample per default period, give or take the final cycle.
	if want := st.Cycles / 64; counts[obs.KindSample] < want || counts[obs.KindSample] > want+1 {
		t.Errorf("sample events %d for %d cycles", counts[obs.KindSample], st.Cycles)
	}
}

// TestObserverFlushEvents switches to architectural replay, where each
// unpredicted violation squashes the tail of the ROB and emits KindFlush.
func TestObserverFlushEvents(t *testing.T) {
	counts := map[obs.Kind]uint64{}
	var squashed uint64
	o := obs.ObserverFunc(func(e obs.Event) {
		counts[e.Kind]++
		if e.Kind == obs.KindFlush {
			squashed += e.A
		}
	})
	cfg := DefaultConfig()
	cfg.Scheme = core.Razor
	cfg.FullFlushReplay = true
	st := observedRun(t, cfg, o, 1, 20000)
	if counts[obs.KindFlush] == 0 {
		t.Fatal("no flush events under full-flush replay")
	}
	if counts[obs.KindFlush] > st.Replays {
		t.Fatalf("flushes %d exceed replays %d", counts[obs.KindFlush], st.Replays)
	}
	if squashed != st.SquashedInsts {
		t.Fatalf("flush payloads sum to %d squashed, stats say %d", squashed, st.SquashedInsts)
	}
}

// TestObserverGoldenDeterminism asserts the event stream is a pure function
// of the seed: two identical runs produce byte-identical sequences, and a
// different seed produces a different one.
func TestObserverGoldenDeterminism(t *testing.T) {
	record := func(seed uint64) []obs.Event {
		var evs []obs.Event
		observedRun(t, DefaultConfig(), obs.ObserverFunc(func(e obs.Event) {
			evs = append(evs, e)
		}), seed, 15000)
		return evs
	}
	a, b := record(1), record(1)
	if len(a) != len(b) {
		t.Fatalf("same seed, different event counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverges at event %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	if len(a) == 0 {
		t.Fatal("no events recorded")
	}
	c := record(2)
	if len(a) == len(c) {
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical event streams")
		}
	}
}

// TestObserverChromeTraceEndToEnd drives a real pipeline into the Chrome
// tracer and checks the acceptance shape: valid JSON with issue/retire
// slices, violation instants, and occupancy counters.
func TestObserverChromeTraceEndToEnd(t *testing.T) {
	tr := obs.NewChromeTracer()
	observedRun(t, DefaultConfig(), tr, 1, 20000)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	phases := map[string]int{}
	sawViolation := false
	for _, e := range doc.TraceEvents {
		phases[e.Ph]++
		if strings.Contains(e.Name, "violation") || strings.Contains(e.Name, "predicted") {
			sawViolation = true
		}
	}
	if phases["X"] == 0 || phases["i"] == 0 || phases["C"] == 0 || phases["M"] == 0 {
		t.Fatalf("missing trace phases: %v", phases)
	}
	if !sawViolation {
		t.Fatal("no violation events in the trace")
	}
	if tr.Dropped() != 0 {
		t.Fatalf("tracer dropped %d events on a short run", tr.Dropped())
	}
}

// TestObserverSamplePeriod checks the configurable occupancy cadence.
func TestObserverSamplePeriod(t *testing.T) {
	var samples uint64
	o := obs.ObserverFunc(func(e obs.Event) {
		if e.Kind == obs.KindSample {
			samples++
			if e.A == 0 && e.B == 0 {
				return // empty machine is legal, just uninteresting
			}
		}
	})
	cfg := DefaultConfig()
	cfg.SamplePeriod = 16
	st := observedRun(t, cfg, o, 1, 10000)
	if want := st.Cycles / 16; samples < want || samples > want+1 {
		t.Fatalf("samples %d for %d cycles at period 16", samples, st.Cycles)
	}
}

// TestRespMirrorsCoreAction pins the numeric correspondence between the
// obs.Resp* payload codes of KindViolationPredicted.B and core.Action
// (obs cannot import core, so the mirror is by convention only).
func TestRespMirrorsCoreAction(t *testing.T) {
	pairs := []struct {
		resp uint64
		act  core.Action
	}{
		{obs.RespNone, core.ActNone},
		{obs.RespConfined, core.ActConfined},
		{obs.RespGlobalStall, core.ActGlobalStall},
		{obs.RespFrontStall, core.ActFrontStall},
		{obs.RespReplay, core.ActReplay},
	}
	for _, p := range pairs {
		if p.resp != uint64(p.act) {
			t.Errorf("obs payload %d != core.%v (%d)", p.resp, p.act, p.act)
		}
	}
}

// TestStallCauseAndRetirePayloads checks the new event payloads against the
// machine's behaviour under Error Padding, where every predicted violation
// becomes a whole-pipeline stall: predicted-violation events carry the
// global-stall response, pad-caused stall cycles dominate, replay-caused
// stall cycles stay bounded by the replay bubble budget, and every retire
// carries either a real select cycle or the NeverIssued sentinel.
func TestStallCauseAndRetirePayloads(t *testing.T) {
	var (
		padGlobal, replayStall uint64
		badResp                uint64
		selected, sentinel     uint64
		badSelect              uint64
	)
	o := obs.ObserverFunc(func(e obs.Event) {
		switch e.Kind {
		case obs.KindGlobalStall:
			if e.A == obs.StallCausePad {
				padGlobal++
			} else {
				replayStall++
			}
		case obs.KindFrontStall:
			if e.A == obs.StallCauseReplay {
				replayStall++
			}
		case obs.KindViolationPredicted:
			if e.B != obs.RespGlobalStall {
				badResp++
			}
		case obs.KindRetire:
			switch {
			case e.A == obs.NeverIssued:
				sentinel++
			case e.A <= e.Cycle:
				selected++
			default:
				badSelect++
			}
		}
	})
	cfg := DefaultConfig()
	cfg.Scheme = core.EP
	st := observedRun(t, cfg, o, 1, 20000)

	if badResp != 0 {
		t.Errorf("%d predicted-violation events without the EP global-stall response", badResp)
	}
	if badSelect != 0 {
		t.Errorf("%d retires with a select cycle after the retire cycle", badSelect)
	}
	if selected == 0 {
		t.Error("no retire carried a concrete select cycle")
	}
	if st.PredictedFaults > 0 && padGlobal == 0 {
		t.Error("EP predicted faults produced no pad-caused global stalls")
	}
	if limit := st.Replays * uint64(cfg.ReplayBubble); replayStall > limit {
		t.Errorf("replay-caused stall cycles %d exceed bubble budget %d (%d replays)",
			replayStall, limit, st.Replays)
	}
	_ = sentinel // whether any instruction skips select is workload-dependent
}
