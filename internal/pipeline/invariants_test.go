package pipeline

// Tests for the simulation-correctness harness: the per-cycle invariant
// checker (Config.Debug / CheckInvariants / CheckDrained), the obs.Auditor
// reconciliation of the event stream against Stats, and the accounting fixes
// this harness was built to catch — including deliberate re-introductions of
// the occupancy and warmup-residue bugs to prove the harness sees them.

import (
	"strings"
	"testing"

	"tvsched/internal/core"
	"tvsched/internal/fault"
	"tvsched/internal/isa"
	"tvsched/internal/obs"
	"tvsched/internal/workload"
)

// debugRun simulates a faulty sjeng phase with the invariant checker enabled
// every cycle and the given observer attached from cycle zero.
func debugRun(t *testing.T, cfg Config, o obs.Observer, seed, n uint64) Stats {
	t.Helper()
	cfg.Debug = true
	return observedRun(t, cfg, o, seed, n)
}

// TestDebugInvariantsAllSchemes runs every scheme under both replay styles at
// the high-fault voltage with the per-cycle checker on: any bookkeeping drift
// anywhere in the machine fails the run immediately.
func TestDebugInvariantsAllSchemes(t *testing.T) {
	schemes := []core.Scheme{core.Razor, core.EP, core.ABS, core.FFS, core.CDS}
	for _, sch := range schemes {
		for _, flush := range []bool{false, true} {
			cfg := DefaultConfig()
			cfg.Scheme = sch
			cfg.FullFlushReplay = flush
			st := debugRun(t, cfg, nil, 1, 5000)
			if st.Committed != 5000 {
				t.Errorf("%v flush=%v: committed %d", sch, flush, st.Committed)
			}
		}
	}
}

// TestCheckInvariantsCatchesCorruption corrupts one bookkeeping structure at
// a time on a drained machine and checks the checker names each violation.
func TestCheckInvariantsCatchesCorruption(t *testing.T) {
	build := func() *Pipeline {
		p, err := New(DefaultConfig(), allALU(), &injector{stage: isa.Execute, everyN: 10}, fault.VNominal)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Run(100); err != nil {
			t.Fatal(err)
		}
		return p
	}
	cases := []struct {
		name    string
		corrupt func(p *Pipeline)
		want    string
	}{
		{"phys leak", func(p *Pipeline) { p.freePhys-- }, "phys conservation"},
		{"loads leak", func(p *Pipeline) { p.loads++ }, "loads counter"},
		{"stores leak", func(p *Pipeline) { p.stores++ }, "stores counter"},
		{"storeAt leak", func(p *Pipeline) { p.storeAt[0x123] = 1 }, "storeAt"},
		{"ghost iq entry", func(p *Pipeline) {
			d := &dynInst{seq: 999}
			d.resetPipelineState()
			p.iq = append(p.iq, d)
		}, "iq"},
		{"replay credit", func(p *Pipeline) { p.globalFreezeReplay = p.globalFreeze + 1 }, "freeze credit"},
	}
	for _, c := range cases {
		p := build()
		if err := p.CheckInvariants(); err != nil {
			t.Fatalf("%s: clean machine fails: %v", c.name, err)
		}
		c.corrupt(p)
		err := p.CheckInvariants()
		if err == nil {
			t.Errorf("%s: corruption not detected", c.name)
		} else if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

// TestOccupancyStatsMatchEventSeries is the regression test for the
// occupancy-accounting fix: under EP at the high-fault voltage (stall-heavy
// by design) the SumIQOcc/SumROBOcc counters must agree exactly with the
// every-cycle KindSample series, because both now observe every cycle —
// stall cycles included.
func TestOccupancyStatsMatchEventSeries(t *testing.T) {
	var samples, sumIQ, sumROB uint64
	o := obs.ObserverFunc(func(e obs.Event) {
		if e.Kind == obs.KindSample {
			samples++
			sumIQ += e.A
			sumROB += e.B
		}
	})
	cfg := DefaultConfig()
	cfg.Scheme = core.EP
	cfg.SamplePeriod = 1
	st := debugRun(t, cfg, o, 1, 20000)
	if st.GlobalStalls == 0 {
		t.Fatal("EP at the faulty voltage produced no global stalls; nothing exercised")
	}
	if samples != st.Cycles {
		t.Fatalf("%d samples for %d cycles at period 1", samples, st.Cycles)
	}
	if sumIQ != st.SumIQOcc {
		t.Fatalf("event-series IQ occupancy %d, Stats say %d", sumIQ, st.SumIQOcc)
	}
	if sumROB != st.SumROBOcc {
		t.Fatalf("event-series ROB occupancy %d, Stats say %d", sumROB, st.SumROBOcc)
	}
}

// TestAuditorReconcilesRealRuns drives real simulations through the Auditor
// and requires the full reconciliation to pass, across both replay styles and
// the scheme spectrum.
func TestAuditorReconcilesRealRuns(t *testing.T) {
	cases := []struct {
		scheme core.Scheme
		flush  bool
	}{
		{core.ABS, false},
		{core.EP, false},
		{core.Razor, true}, // exercises KindFlush payload reconciliation
		{core.CDS, false},
	}
	for _, c := range cases {
		aud := obs.NewAuditor()
		cfg := DefaultConfig()
		cfg.Scheme = c.scheme
		cfg.FullFlushReplay = c.flush
		cfg.SamplePeriod = 1
		st := debugRun(t, cfg, aud, 1, 20000)
		if err := aud.Reconcile(st.Expected(1)); err != nil {
			t.Errorf("%v flush=%v: %v", c.scheme, c.flush, err)
		}
		if c.flush && st.SquashedInsts == 0 {
			t.Errorf("%v flush=%v: no squashes; flush path not exercised", c.scheme, c.flush)
		}
	}
}

// TestOccupancyBugDetectedByAuditor re-introduces the occupancy bug the
// satellite fix removed — accumulation skipped on global-stall cycles — by
// recomputing the sum the old code would have produced, and checks the
// Auditor rejects it.
func TestOccupancyBugDetectedByAuditor(t *testing.T) {
	aud := obs.NewAuditor()
	robAt := map[uint64]uint64{} // cycle -> sampled ROB occupancy
	stall := map[uint64]bool{}   // cycles the old code skipped
	rec := obs.ObserverFunc(func(e obs.Event) {
		switch e.Kind {
		case obs.KindSample:
			robAt[e.Cycle] = e.B
		case obs.KindGlobalStall:
			stall[e.Cycle] = true
		}
	})
	cfg := DefaultConfig()
	cfg.Scheme = core.EP
	cfg.SamplePeriod = 1
	st := debugRun(t, cfg, obs.Multi(aud, rec), 1, 20000)
	if st.GlobalStalls == 0 {
		t.Fatal("no global stalls; the old bug would not manifest")
	}

	// The old step() returned from the global-freeze path before accumulating.
	var buggySumROB uint64
	for cyc, occ := range robAt {
		if !stall[cyc] {
			buggySumROB += occ
		}
	}
	if buggySumROB >= st.SumROBOcc {
		t.Fatalf("buggy sum %d not below fixed sum %d; ROB empty through stalls?", buggySumROB, st.SumROBOcc)
	}
	exp := st.Expected(1)
	exp.SumROBOcc = buggySumROB
	if err := aud.Reconcile(exp); err == nil {
		t.Fatal("auditor accepted the stall-cycle-skipping occupancy sum")
	} else if !strings.Contains(err.Error(), "ROB occupancy") {
		t.Fatalf("auditor failed for the wrong reason: %v", err)
	}
}

// TestWarmupClearsPendingIFetch pins the warmup-residue fix directly: the
// icache-stall accumulator is observer-side residue and must not survive the
// stats reset.
func TestWarmupClearsPendingIFetch(t *testing.T) {
	prof := mustProfile(t, "gcc") // large code footprint: icache misses happen
	gen, err := workload.NewGenerator(prof, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.MispredictRate = prof.MispredictRate
	cfg.Observer = obs.ObserverFunc(func(obs.Event) {})
	p, err := New(cfg, gen, fault.New(fault.DefaultConfig(1)), fault.VNominal)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate warmup ending mid-icache-stall, then the reset.
	p.pendingIFetch = 42
	if err := p.Warmup(0); err != nil {
		t.Fatal(err)
	}
	if p.pendingIFetch != 0 {
		t.Fatalf("pendingIFetch %d leaked across the warmup reset", p.pendingIFetch)
	}
	// And after a real warmup with fetch traffic, nothing may linger either.
	if err := p.Warmup(20000); err != nil {
		t.Fatal(err)
	}
	if p.pendingIFetch != 0 {
		t.Fatalf("pendingIFetch %d nonzero after real warmup", p.pendingIFetch)
	}
}

// TestWarmupResidueBugDetectedByAuditor re-introduces the residue bug — stale
// pendingIFetch surviving into the measured run — and checks the Auditor's
// icache-stall bound rejects the stream.
func TestWarmupResidueBugDetectedByAuditor(t *testing.T) {
	prof := mustProfile(t, "sjeng")
	gen, err := workload.NewGenerator(prof, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.MispredictRate = prof.MispredictRate
	cfg.SamplePeriod = 1
	p, err := New(cfg, gen, fault.New(fault.DefaultConfig(1)), fault.VHighFault)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Warmup(5000); err != nil {
		t.Fatal(err)
	}
	// The bug: residue accumulated before the reset charged to the first
	// measured fetch. Make it large enough that the charge is unambiguous.
	p.pendingIFetch = 10_000_000
	aud := obs.NewAuditor()
	p.SetObserver(aud)
	st, err := p.Run(20000)
	if err != nil {
		t.Fatal(err)
	}
	if err := aud.Reconcile(st.Expected(1)); err == nil {
		t.Fatal("auditor accepted stale icache-stall residue")
	} else if !strings.Contains(err.Error(), "icache stall") {
		t.Fatalf("auditor failed for the wrong reason: %v", err)
	}
}

// TestCDSCriticalityScanSkipsGrantedEntries pins the CDS fix: the §3.5.2
// dependent count must cover waiting consumers only, not entries granted
// earlier in the same selectIssue pass (still physically present in p.iq
// because compaction happens after the grant loop).
func TestCDSCriticalityScanSkipsGrantedEntries(t *testing.T) {
	build := func(ct int) (*Pipeline, *dynInst) {
		cfg := DefaultConfig()
		cfg.Scheme = core.CDS
		cfg.CT = ct
		p, err := New(cfg, allALU(), &injector{stage: isa.Execute, everyN: 1 << 60}, fault.VNominal)
		if err != nil {
			t.Fatal(err)
		}
		prod := &dynInst{seq: 10, in: isa.Inst{PC: 0x400000, Class: isa.IntALU, Dest: 3, Src1: 28, Src2: -1}}
		prod.resetPipelineState()
		prod.inIQ = true
		// One dependent granted earlier in this same pass (inIQ already
		// cleared, still resident in the slice) and one still waiting.
		granted := &dynInst{seq: 11, in: isa.Inst{PC: 0x400010, Class: isa.IntALU, Dest: 4, Src1: 3, Src2: -1}}
		granted.resetPipelineState()
		granted.src[0] = prod
		granted.issued = true
		waiting := &dynInst{seq: 12, in: isa.Inst{PC: 0x400020, Class: isa.IntALU, Dest: 5, Src1: 3, Src2: -1}}
		waiting.resetPipelineState()
		waiting.src[0] = prod
		waiting.inIQ = true
		p.iq = []*dynInst{granted, waiting}
		return p, prod
	}

	// CT=2: with the granted entry wrongly counted the producer would be
	// marked critical; only the waiting dependent may count.
	p, prod := build(2)
	p.issueInst(prod, 0)
	if p.stats.CriticalMarks != 0 {
		t.Fatalf("granted same-pass entry counted as a waiting dependent: %d marks", p.stats.CriticalMarks)
	}
	// CT=1: the genuine waiting dependent alone must still trip the CDL.
	p, prod = build(1)
	p.issueInst(prod, 0)
	if p.stats.CriticalMarks != 1 {
		t.Fatalf("waiting dependent not counted: %d marks", p.stats.CriticalMarks)
	}
}

// storeLoadSource mixes stores (with repeated addresses, so the forwarding
// CAM holds multiset counts above one) with loads and ALU work — the resource
// cocktail the flush-replay conservation test needs in flight.
func storeLoadSource() *sliceSource {
	var insts []isa.Inst
	pc := uint64(0x400000)
	add := func(in isa.Inst) {
		in.PC = pc
		pc += 4
		insts = append(insts, in)
	}
	for i := 0; i < 2; i++ {
		add(isa.Inst{Class: isa.Store, Src1: 28, Src2: 1, Addr: 0x1000_0000})
		add(isa.Inst{Class: isa.Store, Src1: 28, Src2: 2, Addr: 0x1000_0040})
		add(isa.Inst{Class: isa.Load, Dest: int8(1 + i), Src1: 28, Src2: -1, Addr: 0x1000_0000})
		add(isa.Inst{Class: isa.IntALU, Dest: int8(3 + i), Src1: 28, Src2: 29})
		add(isa.Inst{Class: isa.IntALU, Dest: int8(5 + i), Src1: 28, Src2: 29})
		add(isa.Inst{Class: isa.Load, Dest: int8(7 + i), Src1: 28, Src2: -1, Addr: 0x1000_0040})
	}
	for i := range insts {
		insts[i].NextPC = insts[(i+1)%len(insts)].PC
	}
	return &sliceSource{insts: insts}
}

// TestFlushReplayResourceConservation is the focused satellite test: under
// full-flush replay every squash must return freePhys, the LSQ counters and
// the storeAt CAM to their pre-dispatch values. The per-cycle checker
// (Debug) validates conservation at every intermediate cycle; the explicit
// checks pin the drained end state.
func TestFlushReplayResourceConservation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scheme = core.Razor // no TEP: every injected fault replays via flush
	cfg.FullFlushReplay = true
	cfg.Debug = true
	p, err := New(cfg, storeLoadSource(), &injector{stage: isa.Execute, everyN: 7}, fault.VHighFault)
	if err != nil {
		t.Fatal(err)
	}
	full := cfg.NumPhys - isa.NumArchRegs
	if p.freePhys != full || p.loads != 0 || p.stores != 0 || len(p.storeAt) != 0 {
		t.Fatalf("pre-dispatch state not clean: freePhys %d loads %d stores %d storeAt %d",
			p.freePhys, p.loads, p.stores, len(p.storeAt))
	}
	st, err := p.Run(8000)
	if err != nil {
		t.Fatal(err) // Debug: any mid-run conservation break lands here
	}
	if st.Replays == 0 || st.SquashedInsts == 0 {
		t.Fatalf("flush path not exercised: %d replays, %d squashed", st.Replays, st.SquashedInsts)
	}
	if p.freePhys != full {
		t.Errorf("freePhys %d, want %d after drain", p.freePhys, full)
	}
	if p.loads != 0 || p.stores != 0 {
		t.Errorf("LSQ counters not restored: %d loads, %d stores", p.loads, p.stores)
	}
	if len(p.storeAt) != 0 {
		t.Errorf("storeAt CAM holds %d addresses after drain", len(p.storeAt))
	}
	if err := p.CheckDrained(); err != nil {
		t.Errorf("drain check: %v", err)
	}
}

// TestRunContextNoProgressReportsCumulativeTarget pins the error-message fix:
// Committed is cumulative across runs, so the hang diagnostic must report the
// cumulative target, not the current call's n.
func TestRunContextNoProgressReportsCumulativeTarget(t *testing.T) {
	p, err := New(DefaultConfig(), allALU(), &injector{stage: isa.Execute, everyN: 10}, fault.VNominal)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(10); err != nil {
		t.Fatal(err)
	}
	// Wedge the machine: a freeze budget far past the no-progress horizon.
	p.globalFreeze = 1 << 30
	_, err = p.Run(5)
	if err == nil {
		t.Fatal("wedged pipeline reported no error")
	}
	if !strings.Contains(err.Error(), "(10/15 committed)") {
		t.Fatalf("error %q does not report progress against the cumulative target 15", err)
	}
}
