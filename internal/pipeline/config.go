package pipeline

import (
	"errors"
	"fmt"

	"tvsched/internal/core"
	"tvsched/internal/mem"
	"tvsched/internal/obs"
	"tvsched/internal/tep"
)

// ErrBadConfig is wrapped by every Validate failure, so callers can match
// configuration errors with errors.Is. The public facade re-exports it.
var ErrBadConfig = errors.New("bad config")

// Config describes the simulated machine. DefaultConfig matches the paper's
// Core-1: 4-wide fetch/issue/commit, a 10-stage misprediction loop from fetch
// to execute, a 32-entry issue queue and 96 physical registers (§4.1, §S1.2.1).
type Config struct {
	// Width is the fetch, issue and commit width (W).
	Width int
	// FrontDepth is the fetch-to-dispatch latency in cycles. With two issue
	// stages (wakeup/select) and one register-read stage, execution begins
	// at stage FrontDepth+4, giving the 10-stage mispredict loop of §4.1.
	FrontDepth int
	// FrontQ is the capacity of the in-order front-end buffer.
	FrontQ int
	// ROBSize, IQSize are the reorder-buffer and issue-queue capacities.
	ROBSize, IQSize int
	// LQSize, SQSize bound in-flight loads and stores.
	LQSize, SQSize int
	// NumPhys is the physical register file size; NumPhys−32 results may be
	// in flight.
	NumPhys int
	// SimpleALUs, ComplexALUs, MemPorts are the execute-stage lane counts.
	SimpleALUs, ComplexALUs, MemPorts int
	// ReplayBubble is the whole-pipeline recovery stall, in cycles, charged
	// when an unpredicted violation triggers Razor-style replay (§2.1.2).
	ReplayBubble int
	// ReplayLatency is the additional latency, in cycles, the errant
	// instruction pays to re-execute through the faulty stage via the
	// recovery path; its dependents wait for the replayed result.
	ReplayLatency int
	// FullFlushReplay switches unpredicted-violation recovery from the
	// default selective (RazorII shadow-latch style: the errant instruction
	// replays in place) to architectural replay: the errant instruction and
	// everything younger are squashed and re-fetched. Full flush costs
	// ~2-3x more per fault and overshoots the paper's Table 1 Razor
	// overheads; it exists for the ablation in bench_test.go.
	FullFlushReplay bool
	// Scheme selects the timing-error handling scheme under test.
	Scheme core.Scheme
	// MispredictRate is the per-branch probability of paying the
	// misprediction loop (per-benchmark, from the workload profile).
	MispredictRate float64
	// Seed drives the machine's deterministic randomness (oracle noise).
	Seed uint64
	// TEP configures the timing error predictor.
	TEP tep.Config
	// NewPredictor, when non-nil, overrides the predictor implementation
	// (e.g. tep.NewPerceptron for the predictor-design ablation); by default
	// the table-based TEP of §2.1.1 is built from the TEP config.
	NewPredictor func() tep.Predictor
	// CT is the CDL criticality threshold (§3.5.2; paper best: 8).
	CT int
	// Hierarchy configures the caches.
	Hierarchy mem.HierarchyConfig
	// Observer, when non-nil, receives the typed cycle-level event stream
	// (see internal/obs): fetch/dispatch/issue/retire progress, predicted
	// and actual violations, replays and flushes, FUSR slot freezes,
	// delayed tag broadcasts, TEP activity, and periodic occupancy samples.
	// nil (the default) keeps the hot loop on its uninstrumented fast path.
	Observer obs.Observer
	// SamplePeriod is the cycle interval between KindSample occupancy
	// events (0 means the default of 64). Only consulted when Observer is
	// attached.
	SamplePeriod uint64
	// Debug, when set, runs CheckInvariants after every simulated cycle and
	// CheckDrained at the end of every run, turning silent bookkeeping
	// corruption into an immediate error. Costs roughly an order of
	// magnitude in simulation speed; off (the default) it costs nothing.
	Debug bool
	// Supervisor, when non-nil, enables the graceful-degradation supervisor
	// (see core.Supervisor): windowed monitors escalate the handling scheme
	// and supply under transient hazards and a watchdog recovers from
	// no-forward-progress livelock. nil (the default) leaves every run
	// bit-identical to the unsupervised machine.
	Supervisor *core.SupervisorPolicy
}

// DefaultConfig returns the Core-1 machine of §4.1.
func DefaultConfig() Config {
	return Config{
		Width:         4,
		FrontDepth:    6,
		FrontQ:        24,
		ROBSize:       128,
		IQSize:        32,
		LQSize:        24,
		SQSize:        16,
		NumPhys:       96,
		SimpleALUs:    3,
		ComplexALUs:   1,
		MemPorts:      2,
		ReplayBubble:  3,
		ReplayLatency: 8,
		Scheme:        core.ABS,
		Seed:          1,
		TEP:           tep.DefaultConfig(),
		CT:            core.DefaultCDL().CT,
		Hierarchy:     mem.DefaultHierarchy(),
	}
}

// Validate reports configuration errors; every failure wraps ErrBadConfig.
func (c *Config) Validate() error {
	if c.Width < 1 || c.FrontDepth < 1 || c.FrontQ < c.Width {
		return fmt.Errorf("pipeline: %w: bad front-end geometry", ErrBadConfig)
	}
	if c.ROBSize < c.Width || c.IQSize < 1 || c.LQSize < 1 || c.SQSize < 1 {
		return fmt.Errorf("pipeline: %w: bad window geometry", ErrBadConfig)
	}
	if c.NumPhys <= 32 {
		return fmt.Errorf("pipeline: %w: need more physical than architectural registers", ErrBadConfig)
	}
	if c.SimpleALUs < 1 || c.ComplexALUs < 1 || c.MemPorts < 1 {
		return fmt.Errorf("pipeline: %w: need at least one lane of each kind", ErrBadConfig)
	}
	if c.Scheme >= core.NumSchemes {
		return fmt.Errorf("pipeline: %w: bad scheme", ErrBadConfig)
	}
	if c.CT < 1 {
		return fmt.Errorf("pipeline: %w: CT must be positive", ErrBadConfig)
	}
	if c.Supervisor != nil {
		if err := c.Supervisor.Validate(); err != nil {
			return fmt.Errorf("pipeline: %w: %v", ErrBadConfig, err)
		}
	}
	return nil
}

// LittleConfig returns a 2-wide in-order-leaning variant (half the lanes,
// window and queues of Core-1) for machine-width sensitivity studies: with
// less architectural slack, confined violations have less room to hide.
func LittleConfig() Config {
	c := DefaultConfig()
	c.Width = 2
	c.FrontQ = 12
	c.ROBSize = 48
	c.IQSize = 16
	c.LQSize = 12
	c.SQSize = 8
	c.NumPhys = 64
	c.SimpleALUs = 2
	c.ComplexALUs = 1
	c.MemPorts = 1
	return c
}

// BigConfig returns a 6-wide variant with double the window — the opposite
// end of the slack spectrum.
func BigConfig() Config {
	c := DefaultConfig()
	c.Width = 6
	c.FrontQ = 36
	c.ROBSize = 256
	c.IQSize = 64
	c.LQSize = 48
	c.SQSize = 32
	c.NumPhys = 192
	c.SimpleALUs = 4
	c.ComplexALUs = 2
	c.MemPorts = 2
	return c
}
