package pipeline

// End-to-end tests of the graceful-degradation supervisor and the hazard
// plumbing: bit-exactness of the disabled paths, worst-window CPI bounding
// under a droop-storm, watchdog recovery from hazard-induced livelock, and
// the obs payload-code mirror.

import (
	"strings"
	"testing"

	"tvsched/internal/core"
	"tvsched/internal/fault"
	"tvsched/internal/hazard"
	"tvsched/internal/isa"
	"tvsched/internal/obs"
	"tvsched/internal/workload"
)

// TestSupReasonMirrorsCore pins the numeric correspondence between the
// obs.SupReason* payload codes of KindSupervisor.C and core.SupReason (obs
// cannot import core, so the mirror is by convention only).
func TestSupReasonMirrorsCore(t *testing.T) {
	pairs := []struct {
		code uint64
		r    core.SupReason
	}{
		{obs.SupReasonNone, core.SupReasonNone},
		{obs.SupReasonUnpredRate, core.SupReasonUnpredRate},
		{obs.SupReasonPrecision, core.SupReasonPrecision},
		{obs.SupReasonWatchdog, core.SupReasonWatchdog},
		{obs.SupReasonQuiet, core.SupReasonQuiet},
	}
	for _, p := range pairs {
		if p.code != uint64(p.r) {
			t.Errorf("obs payload %d != core.%v (%d)", p.code, p.r, uint64(p.r))
		}
	}
}

func benchPipeline(t *testing.T, bench string, scheme core.Scheme, vdd float64, mutate func(*Config)) *Pipeline {
	t.Helper()
	prof, err := workload.Lookup(bench)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewGenerator(prof, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Scheme = scheme
	cfg.MispredictRate = prof.MispredictRate
	if mutate != nil {
		mutate(&cfg)
	}
	fc := fault.DefaultConfig(cfg.Seed)
	fc.Bias = prof.FaultBias
	p, err := New(cfg, gen, fault.New(fc), vdd)
	if err != nil {
		t.Fatal(err)
	}
	p.PrefillData(gen.WarmRegion())
	return p
}

// TestEmptyTimelineBitExact: attaching an empty hazard timeline (and,
// separately, enabling the supervisor over a quiet run) must leave every
// statistic bit-identical to the plain machine — the acceptance criterion
// that the whole layer is invisible until a hazard actually fires.
func TestEmptyTimelineBitExact(t *testing.T) {
	run := func(mutate func(*Config), h fault.Hazard) Stats {
		p := benchPipeline(t, "bzip2", core.ABS, fault.VHighFault, mutate)
		if h != nil {
			p.SetHazard(h)
		}
		st, err := p.Run(30000)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	base := run(nil, nil)
	withEmpty := run(nil, hazard.MustNew(99))
	if base != withEmpty {
		t.Fatalf("empty timeline perturbed the run:\nbase %+v\nwith %+v", base, withEmpty)
	}
	pol := core.DefaultSupervisorPolicy()
	supervised := run(func(c *Config) { c.Supervisor = &pol }, hazard.MustNew(99))
	if supervised.SupEscalations+supervised.SupWatchdogFires != 0 {
		t.Fatalf("supervisor escalated on a quiet run: %+v", supervised)
	}
	// The supervised quiet run must match except for (zero) sup counters.
	if base != supervised {
		t.Fatalf("idle supervisor perturbed the run:\nbase %+v\nsup  %+v", base, supervised)
	}
}

// worstWindowCPI runs n instructions and tracks the worst cycles-per-retire
// ratio over fixed windows via the observer, so the supervised and
// unsupervised machines are measured identically.
func worstWindowCPI(t *testing.T, p *Pipeline, n, window uint64) (worst float64, st Stats) {
	t.Helper()
	var winStart, retires, lastCycle uint64
	started := false
	flush := func(end uint64) {
		cycles := end - winStart
		if cycles == 0 {
			return
		}
		cpi := float64(cycles) / float64(max(retires, 1))
		if cpi > worst {
			worst = cpi
		}
		winStart, retires = end, 0
	}
	p.SetObserver(obs.ObserverFunc(func(e obs.Event) {
		if e.Cycle == 0 {
			return // component-level events (TEP) carry no cycle
		}
		if !started {
			winStart, started = e.Cycle, true
		}
		// Event cycles are not monotone (retire-side events carry earlier
		// stage cycles), so window boundaries track the high-water mark.
		if e.Cycle > lastCycle {
			lastCycle = e.Cycle
		}
		if e.Kind == obs.KindRetire {
			retires++
		}
		if lastCycle-winStart >= window {
			flush(lastCycle)
		}
	}))
	st, err := p.Run(n)
	if err != nil {
		t.Fatal(err)
	}
	flush(lastCycle)
	return worst, st
}

// TestSupervisorBoundsStormCPI is the headline acceptance test: under the
// droop-storm scenario the supervised machine escalates and keeps the worst
// window materially cheaper than the unsupervised machine on the same seed,
// then de-escalates back to the base scheme once the storm passes.
func TestSupervisorBoundsStormCPI(t *testing.T) {
	const n = 170000
	// Storm onset ~cycle 19k (after warmup), peak ~56k-81k, sensor back at
	// ~94k; the ~140k-cycle run leaves room for full de-escalation.
	const horizon = 150000
	sc, err := hazard.Lookup("droop-storm")
	if err != nil {
		t.Fatal(err)
	}
	build := func(mutate func(*Config)) *Pipeline {
		p := benchPipeline(t, "bzip2", core.ABS, fault.VHighFault, mutate)
		p.SetHazard(sc.Build(1, horizon))
		// Warm caches and predictors before the storm arrives, so the worst
		// window reflects hazard handling rather than shared cold-start cost.
		if err := p.Warmup(20000); err != nil {
			t.Fatal(err)
		}
		return p
	}
	worstOff, _ := worstWindowCPI(t, build(nil), n, 5000)
	pol := core.DefaultSupervisorPolicy()
	sup := build(func(c *Config) { c.Supervisor = &pol })
	worstOn, stOn := worstWindowCPI(t, sup, n, 5000)

	if stOn.SupEscalations == 0 {
		t.Fatalf("supervisor never escalated under the droop-storm: %+v", stOn)
	}
	if stOn.SupDeescalations == 0 {
		t.Fatalf("supervisor never de-escalated after the storm passed: %+v", stOn)
	}
	if sup.Supervisor().Level() != 0 {
		t.Fatalf("supervisor still at level %d at run end", sup.Supervisor().Level())
	}
	if got := sup.Env().VDD(); got != fault.VHighFault {
		t.Fatalf("supply not restored after de-escalation: %v", got)
	}
	if worstOn >= 0.75*worstOff {
		t.Fatalf("supervision did not bound worst-window CPI: on=%.3f off=%.3f", worstOn, worstOff)
	}
	t.Logf("worst-window CPI: unsupervised %.3f, supervised %.3f (escalations=%d, deescalations=%d)",
		worstOff, worstOn, stOn.SupEscalations, stOn.SupDeescalations)
}

// retireInjector violates at retire for every everyN-th instruction while
// the supply is below nominal (mirroring the fault model's voltage gate).
type retireInjector struct{ everyN uint64 }

func (in *retireInjector) Violates(pc uint64, stage isa.Stage, env *fault.Env, seq uint64) bool {
	return stage == isa.Retire && env.VDD() < fault.VNominal && seq%in.everyN == 0
}

func (in *retireInjector) Margin(uint64, isa.Stage) float64 { return 0.95 }

// blackoutTimeline is a blackout-class droop shaped for these short unit
// runs: it arrives early and outlasts both the watchdog period and the hard
// 200k no-commit limit, so the only way out below nominal VDD is a supply
// boost. (The curated "blackout" scenario has the same +40% magnitude but
// campaign-scale geometry.)
func blackoutTimeline() *hazard.Timeline {
	return hazard.MustNew(1, hazard.Event{
		Kind: hazard.Droop, Start: 2000, Attack: 100, Hold: 500000, Release: 100,
		Mag: 0.40,
	})
}

// TestWatchdogRecoversFromBlackout: under a blackout droop replay is
// unreliable at 0.97 V, so a retire-stage violation blocks commit forever
// and the unsupervised machine returns the no-progress error. The
// supervised machine's watchdog must fire, boost the supply to VSafe (where
// replay works again), and complete the run.
func TestWatchdogRecoversFromBlackout(t *testing.T) {
	const n = 40000
	build := func(pol *core.SupervisorPolicy) *Pipeline {
		cfg := DefaultConfig()
		cfg.Scheme = core.Razor
		cfg.Supervisor = pol
		p, err := New(cfg, allALU(), &retireInjector{everyN: 400}, fault.VHighFault)
		if err != nil {
			t.Fatal(err)
		}
		p.SetHazard(blackoutTimeline())
		return p
	}

	if _, err := build(nil).Run(n); err == nil {
		t.Fatal("unsupervised blackout run completed; expected the no-progress error")
	} else if !strings.Contains(err.Error(), "no commit") {
		t.Fatalf("unsupervised blackout run failed differently: %v", err)
	}

	pol := core.DefaultSupervisorPolicy()
	// Neutralize the window monitor so the watchdog path is what recovers
	// (otherwise the unpredicted-rate monitor climbs the ladder first).
	pol.EscalateUnpred = 10
	p := build(&pol)
	aud := obs.NewAuditor()
	p.SetObserver(aud)
	st, err := p.Run(n)
	if err != nil {
		t.Fatalf("supervised blackout run did not recover: %v", err)
	}
	if st.Committed < n {
		t.Fatalf("short run: %d/%d committed", st.Committed, n)
	}
	if st.SupWatchdogFires == 0 {
		t.Fatalf("run completed without the watchdog firing: %+v", st)
	}
	if got := p.Env().VDD(); got != pol.VSafe {
		t.Fatalf("watchdog recovery should hold VSafe %v, at %v", pol.VSafe, got)
	}
	if err := aud.Reconcile(st.Expected(64)); err != nil {
		t.Fatalf("auditor reconciliation after watchdog recovery: %v", err)
	}
}

// TestWatchdogBudgetFallsBackToError: with a zero watchdog budget the
// supervised machine degrades to today's behaviour — a hard error.
func TestWatchdogBudgetFallsBackToError(t *testing.T) {
	pol := core.DefaultSupervisorPolicy()
	pol.WatchdogBudget = 0
	pol.EscalateUnpred = 10 // window monitor off: the watchdog is the only recourse
	cfg := DefaultConfig()
	cfg.Scheme = core.Razor
	cfg.Supervisor = &pol
	p, err := New(cfg, allALU(), &retireInjector{everyN: 400}, fault.VHighFault)
	if err != nil {
		t.Fatal(err)
	}
	p.SetHazard(blackoutTimeline())
	if _, err := p.Run(40000); err == nil {
		t.Fatal("zero-budget watchdog run completed")
	} else if !strings.Contains(err.Error(), "watchdog exhausted") {
		t.Fatalf("unexpected failure: %v", err)
	}
}

// TestSupervisorEventChain: every supervisor transition emits a chained
// KindSupervisor event that the Auditor accepts and counts.
func TestSupervisorEventChain(t *testing.T) {
	sc, err := hazard.Lookup("droop-storm")
	if err != nil {
		t.Fatal(err)
	}
	pol := core.DefaultSupervisorPolicy()
	p := benchPipeline(t, "bzip2", core.ABS, fault.VHighFault,
		func(c *Config) { c.Supervisor = &pol })
	p.SetHazard(sc.Build(1, 60000))
	aud := obs.NewAuditor()
	p.SetObserver(aud)
	st, err := p.Run(120000)
	if err != nil {
		t.Fatal(err)
	}
	if st.SupEscalations == 0 {
		t.Fatal("no escalations to audit")
	}
	if err := aud.Reconcile(st.Expected(64)); err != nil {
		t.Fatalf("auditor rejected the supervised stream: %v", err)
	}
	if got := aud.Count(obs.KindSupervisor); got != st.SupEscalations+st.SupDeescalations+st.SupWatchdogFires {
		t.Fatalf("supervisor events %d vs transitions %d", got,
			st.SupEscalations+st.SupDeescalations+st.SupWatchdogFires)
	}
}

// TestWarmupResetsSupervision: escalations during warmup must not leak into
// the measured phase — after warmup the machine is back at the base rung
// with zeroed supervisor counters.
func TestWarmupResetsSupervision(t *testing.T) {
	sc, err := hazard.Lookup("droop-storm")
	if err != nil {
		t.Fatal(err)
	}
	pol := core.DefaultSupervisorPolicy()
	p := benchPipeline(t, "bzip2", core.ABS, fault.VHighFault,
		func(c *Config) { c.Supervisor = &pol })
	// Storm early so warmup absorbs it.
	p.SetHazard(sc.Build(1, 30000))
	if err := p.Warmup(60000); err != nil {
		t.Fatal(err)
	}
	if p.Supervisor().Transitions() != 0 || p.Supervisor().Level() != 0 {
		t.Fatalf("supervision leaked across warmup: level=%d transitions=%d",
			p.Supervisor().Level(), p.Supervisor().Transitions())
	}
	if p.Scheme() != core.ABS {
		t.Fatalf("scheme %v after warmup reset, want ABS", p.Scheme())
	}
	st, err := p.Run(30000)
	if err != nil {
		t.Fatal(err)
	}
	if st.Committed != 30000 {
		t.Fatalf("measured run short: %+v", st.Committed)
	}
}
