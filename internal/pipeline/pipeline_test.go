package pipeline

import (
	"testing"

	"tvsched/internal/core"
	"tvsched/internal/fault"
	"tvsched/internal/isa"
	"tvsched/internal/rng"
	"tvsched/internal/workload"
)

// sliceSource replays a fixed instruction slice, cycling if exhausted.
type sliceSource struct {
	insts []isa.Inst
	pos   int
}

func (s *sliceSource) Next() isa.Inst {
	in := s.insts[s.pos%len(s.insts)]
	s.pos++
	return in
}

// chainSource produces an infinite serial dependency chain of ALU ops.
func chainSource() *sliceSource {
	return &sliceSource{insts: []isa.Inst{
		{PC: 0x400000, Class: isa.IntALU, Dest: 1, Src1: 1, Src2: -1, NextPC: 0x400004},
		{PC: 0x400004, Class: isa.IntALU, Dest: 1, Src1: 1, Src2: -1, NextPC: 0x400000},
	}}
}

// independentSource produces fully independent ALU ops.
func independentSource() *sliceSource {
	insts := make([]isa.Inst, 8)
	for i := range insts {
		insts[i] = isa.Inst{
			PC:    uint64(0x400000 + 4*i),
			Class: isa.IntALU,
			Dest:  int8(1 + i), Src1: 28, Src2: 29,
			NextPC: uint64(0x400000 + 4*((i+1)%8)),
		}
	}
	return &sliceSource{insts: insts}
}

func mustRun(t *testing.T, cfg Config, src Source, vdd float64, n uint64) Stats {
	t.Helper()
	m := fault.New(fault.DefaultConfig(cfg.Seed))
	p, err := New(cfg, src, m, vdd)
	if err != nil {
		t.Fatal(err)
	}
	st, err := p.Run(n)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestSerialChainIPC(t *testing.T) {
	// A strict dependency chain of single-cycle ALU ops commits at most one
	// instruction per cycle (back-to-back wakeup), so IPC ~= 1.
	cfg := DefaultConfig()
	st := mustRun(t, cfg, chainSource(), fault.VNominal, 20000)
	if ipc := st.IPC(); ipc < 0.85 || ipc > 1.02 {
		t.Fatalf("serial chain IPC = %v, want ~1", ipc)
	}
}

func TestIndependentOpsBoundByLanes(t *testing.T) {
	// Independent single-cycle ALU ops are bounded by the three simple-ALU
	// lanes, not by the 4-wide front end.
	cfg := DefaultConfig()
	st := mustRun(t, cfg, independentSource(), fault.VNominal, 20000)
	if ipc := st.IPC(); ipc < 2.7 || ipc > 3.05 {
		t.Fatalf("independent ALU IPC = %v, want ~3 (three simple lanes)", ipc)
	}
}

func TestMoreLanesRaiseThroughput(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SimpleALUs = 5
	st := mustRun(t, cfg, independentSource(), fault.VNominal, 20000)
	if ipc := st.IPC(); ipc < 3.3 {
		t.Fatalf("4 simple lanes IPC = %v, want ~4", ipc)
	}
}

func TestNominalVoltageNoFaults(t *testing.T) {
	cfg := DefaultConfig()
	gen, err := workload.NewGenerator(mustProfile(t, "bzip2"), 3)
	if err != nil {
		t.Fatal(err)
	}
	st := mustRun(t, cfg, gen, fault.VNominal, 30000)
	if st.Faults != 0 || st.Replays != 0 || st.GlobalStalls != 0 {
		t.Fatalf("faults at nominal voltage: %+v", st)
	}
	if st.Committed != 30000 {
		t.Fatalf("committed %d", st.Committed)
	}
}

func mustProfile(t *testing.T, name string) workload.Profile {
	t.Helper()
	p, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("profile %s missing", name)
	}
	return p
}

func runBench(t *testing.T, name string, scheme core.Scheme, vdd float64, n uint64) Stats {
	t.Helper()
	prof := mustProfile(t, name)
	gen, err := workload.NewGenerator(prof, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Scheme = scheme
	cfg.MispredictRate = prof.MispredictRate
	cfg.Seed = 7
	fc := fault.DefaultConfig(7)
	fc.Bias = prof.FaultBias
	p, err := New(cfg, gen, fault.New(fc), vdd)
	if err != nil {
		t.Fatal(err)
	}
	st, err := p.Run(n)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestFaultRatesAtFaultyVoltages(t *testing.T) {
	low := runBench(t, "bzip2", core.ABS, fault.VLowFault, 40000)
	high := runBench(t, "bzip2", core.ABS, fault.VHighFault, 40000)
	if low.Faults == 0 || high.Faults == 0 {
		t.Fatal("no faults in faulty environments")
	}
	if fr := low.FaultRate(); fr < 0.005 || fr > 0.05 {
		t.Fatalf("low-voltage fault rate %v out of band", fr)
	}
	if fr := high.FaultRate(); fr < 0.03 || fr > 0.16 {
		t.Fatalf("high-fault-rate %v out of band", fr)
	}
	if high.FaultRate() <= low.FaultRate() {
		t.Fatal("fault rate must rise as voltage drops")
	}
}

func TestTEPCoverageHigh(t *testing.T) {
	// The premise of the paper: PC-indexed prediction catches the vast
	// majority of violations after warmup.
	st := runBench(t, "bzip2", core.ABS, fault.VHighFault, 60000)
	if cov := st.Coverage(); cov < 0.80 {
		t.Fatalf("TEP coverage %v, want > 0.80 (predicted %d / faults %d, replays %d)",
			cov, st.PredictedFaults, st.Faults, st.Replays)
	}
}

func TestRazorRepaysEverything(t *testing.T) {
	st := runBench(t, "bzip2", core.Razor, fault.VHighFault, 30000)
	if st.PredictedFaults != 0 {
		t.Fatal("Razor must not predict")
	}
	if st.Replays == 0 {
		t.Fatal("Razor must replay on faults")
	}
	// Every non-averted fault replays; replay count should be near the
	// fault count (fetch/decode faults are bubbles counted as replays too).
	if st.Replays < st.Faults/2 {
		t.Fatalf("Razor replays %d << faults %d", st.Replays, st.Faults)
	}
}

func TestEPStallsGlobally(t *testing.T) {
	st := runBench(t, "bzip2", core.EP, fault.VHighFault, 30000)
	if st.GlobalStalls == 0 {
		t.Fatal("EP produced no global stalls")
	}
	if st.ConfinedEvents != 0 {
		t.Fatal("EP must not use confined handling")
	}
}

func TestVTEConfines(t *testing.T) {
	st := runBench(t, "bzip2", core.ABS, fault.VHighFault, 30000)
	if st.ConfinedEvents == 0 {
		t.Fatal("ABS produced no confined events")
	}
	// The only whole-pipeline stalls a confined scheme takes are replay
	// recovery bubbles for unpredicted violations — never per-fault padding.
	if st.GlobalStalls > st.Replays*uint64(DefaultConfig().ReplayBubble) {
		t.Fatalf("ABS global stalls %d exceed replay recovery bubbles (%d replays)",
			st.GlobalStalls, st.Replays)
	}
	if st.SlotFreezes == 0 {
		t.Fatal("VTE must freeze issue slots for faulty instructions")
	}
}

func TestSchemeOverheadOrdering(t *testing.T) {
	// The paper's headline: IPC(fault-free) >= IPC(VTE) > IPC(EP) > IPC(Razor)
	// in a faulty environment.
	n := uint64(60000)
	free := runBench(t, "bzip2", core.ABS, fault.VNominal, n)
	abs := runBench(t, "bzip2", core.ABS, fault.VHighFault, n)
	ep := runBench(t, "bzip2", core.EP, fault.VHighFault, n)
	razor := runBench(t, "bzip2", core.Razor, fault.VHighFault, n)

	if !(free.IPC() >= abs.IPC()*0.999) {
		t.Fatalf("fault-free IPC %v below ABS faulty IPC %v", free.IPC(), abs.IPC())
	}
	if !(abs.IPC() > ep.IPC()) {
		t.Fatalf("ABS IPC %v not above EP IPC %v", abs.IPC(), ep.IPC())
	}
	if !(ep.IPC() > razor.IPC()) {
		t.Fatalf("EP IPC %v not above Razor IPC %v", ep.IPC(), razor.IPC())
	}

	// And the headline magnitude: VTE eliminates most of EP's overhead.
	ovEP := free.IPC()/ep.IPC() - 1
	ovABS := free.IPC()/abs.IPC() - 1
	if ovABS > ovEP*0.6 {
		t.Fatalf("ABS overhead %v not well below EP overhead %v", ovABS, ovEP)
	}
}

func TestCDSMarksCriticality(t *testing.T) {
	st := runBench(t, "sjeng", core.CDS, fault.VHighFault, 40000)
	if st.CriticalMarks == 0 {
		t.Fatal("CDS never marked a critical instruction")
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := runBench(t, "gcc", core.FFS, fault.VLowFault, 20000)
	b := runBench(t, "gcc", core.FFS, fault.VLowFault, 20000)
	if a != b {
		t.Fatalf("simulation not deterministic:\n%+v\nvs\n%+v", a, b)
	}
}

func TestBranchMispredictsCostCycles(t *testing.T) {
	prof := mustProfile(t, "bzip2")
	gen, _ := workload.NewGenerator(prof, 5)
	cfg := DefaultConfig()
	cfg.MispredictRate = 0
	base := mustRun(t, cfg, gen, fault.VNominal, 30000)

	gen2, _ := workload.NewGenerator(prof, 5)
	cfg2 := DefaultConfig()
	cfg2.MispredictRate = 0.05
	noisy := mustRun(t, cfg2, gen2, fault.VNominal, 30000)

	if noisy.BranchMispredicts == 0 {
		t.Fatal("no mispredicts recorded")
	}
	if noisy.IPC() >= base.IPC() {
		t.Fatalf("mispredicts did not cost cycles: %v vs %v", noisy.IPC(), base.IPC())
	}
}

func TestMemoryBoundWorkloadLowIPC(t *testing.T) {
	// mcf-like: cold pointer chasing must produce much lower IPC than a
	// cache-resident ILP-rich workload.
	mcf := runBench(t, "mcf", core.ABS, fault.VNominal, 30000)
	povray := runBench(t, "povray", core.ABS, fault.VNominal, 30000)
	if mcf.IPC() >= povray.IPC() {
		t.Fatalf("mcf IPC %v not below povray IPC %v", mcf.IPC(), povray.IPC())
	}
	if mcf.L1D.MissRate() <= povray.L1D.MissRate() {
		t.Fatalf("mcf L1D miss rate %v not above povray %v",
			mcf.L1D.MissRate(), povray.L1D.MissRate())
	}
}

func TestStatsInvariants(t *testing.T) {
	st := runBench(t, "astar", core.FFS, fault.VHighFault, 30000)
	if st.Committed != 30000 {
		t.Fatalf("committed %d", st.Committed)
	}
	if st.Fetched < st.Committed {
		t.Fatal("fetched fewer than committed")
	}
	if st.Dispatched < st.Committed {
		t.Fatal("dispatched fewer than committed")
	}
	if st.Selected < st.Committed {
		t.Fatal("selected fewer than committed")
	}
	if st.PredictedFaults+st.FalsePositives == 0 {
		t.Fatal("no TEP activity at high fault rate")
	}
	var sum uint64
	for _, c := range st.FaultsByStage {
		sum += c
	}
	if sum != st.Faults {
		t.Fatalf("per-stage fault counts %d != total %d", sum, st.Faults)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := DefaultConfig()
	bad.Width = 0
	if _, err := New(bad, chainSource(), fault.New(fault.DefaultConfig(1)), fault.VNominal); err == nil {
		t.Fatal("invalid config accepted")
	}
	bad2 := DefaultConfig()
	bad2.NumPhys = 16
	if err := bad2.Validate(); err == nil {
		t.Fatal("too-few physical registers accepted")
	}
}

func TestLoadLatencyVisible(t *testing.T) {
	// A chain of dependent loads (each missing to memory) must be far slower
	// than a chain of dependent ALU ops.
	loads := make([]isa.Inst, 64)
	for i := range loads {
		loads[i] = isa.Inst{
			PC:    uint64(0x400000 + 4*i),
			Class: isa.Load,
			Dest:  int8(1 + i%26), Src1: int8(1 + (i+25)%26), Src2: -1,
			Addr:   uint64(0x8000_0000 + i*1<<20), // all cold lines
			NextPC: uint64(0x400000 + 4*((i+1)%64)),
		}
	}
	cfg := DefaultConfig()
	st := mustRun(t, cfg, &sliceSource{insts: loads}, fault.VNominal, 2000)
	if ipc := st.IPC(); ipc > 0.2 {
		t.Fatalf("dependent cold loads IPC %v, expected memory-bound crawl", ipc)
	}
}

func BenchmarkPipelineFaultFree(b *testing.B) {
	prof, _ := workload.ByName("bzip2")
	gen, _ := workload.NewGenerator(prof, 1)
	cfg := DefaultConfig()
	cfg.MispredictRate = prof.MispredictRate
	p, _ := New(cfg, gen, fault.New(fault.DefaultConfig(1)), fault.VNominal)
	b.ResetTimer()
	if _, err := p.Run(uint64(b.N)); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkPipelineFaulty(b *testing.B) {
	prof, _ := workload.ByName("bzip2")
	gen, _ := workload.NewGenerator(prof, 1)
	cfg := DefaultConfig()
	cfg.Scheme = core.ABS
	cfg.MispredictRate = prof.MispredictRate
	fc := fault.DefaultConfig(1)
	fc.Bias = prof.FaultBias
	p, _ := New(cfg, gen, fault.New(fc), fault.VHighFault)
	b.ResetTimer()
	if _, err := p.Run(uint64(b.N)); err != nil {
		b.Fatal(err)
	}
}

func TestFullFlushReplayCostsMore(t *testing.T) {
	// The ablation behind DESIGN.md's replay decision: architectural
	// (flush-and-refetch) recovery costs clearly more than selective
	// replay under Razor, where every violation replays.
	run := func(fullFlush bool) Stats {
		prof := mustProfile(t, "bzip2")
		gen, _ := workload.NewGenerator(prof, 7)
		cfg := DefaultConfig()
		cfg.Scheme = core.Razor
		cfg.MispredictRate = prof.MispredictRate
		cfg.FullFlushReplay = fullFlush
		cfg.Seed = 7
		fc := fault.DefaultConfig(7)
		fc.Bias = prof.FaultBias
		p, err := New(cfg, gen, fault.New(fc), fault.VHighFault)
		if err != nil {
			t.Fatal(err)
		}
		p.PrefillData(gen.WarmRegion())
		if err := p.Warmup(15000); err != nil {
			t.Fatal(err)
		}
		st, err := p.Run(40000)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	sel := run(false)
	full := run(true)
	if full.Replays == 0 || full.SquashedInsts == 0 {
		t.Fatalf("full flush did not squash: %+v", full)
	}
	if sel.SquashedInsts != 0 {
		t.Fatal("selective replay must not squash")
	}
	if full.IPC() >= sel.IPC() {
		t.Fatalf("full flush IPC %v not below selective %v", full.IPC(), sel.IPC())
	}
}

func TestFullFlushDeterministic(t *testing.T) {
	run := func() Stats {
		prof := mustProfile(t, "gcc")
		gen, _ := workload.NewGenerator(prof, 3)
		cfg := DefaultConfig()
		cfg.Scheme = core.ABS
		cfg.MispredictRate = prof.MispredictRate
		cfg.FullFlushReplay = true
		cfg.Seed = 3
		fc := fault.DefaultConfig(3)
		fc.Bias = prof.FaultBias
		p, _ := New(cfg, gen, fault.New(fc), fault.VHighFault)
		st, err := p.Run(30000)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("full-flush runs diverge:\n%+v\n%+v", a, b)
	}
}

func TestFullFlushCommitsExactly(t *testing.T) {
	prof := mustProfile(t, "sjeng")
	gen, _ := workload.NewGenerator(prof, 9)
	cfg := DefaultConfig()
	cfg.Scheme = core.Razor
	cfg.MispredictRate = prof.MispredictRate
	cfg.FullFlushReplay = true
	cfg.Seed = 9
	fc := fault.DefaultConfig(9)
	fc.Bias = prof.FaultBias
	p, _ := New(cfg, gen, fault.New(fc), fault.VHighFault)
	st, err := p.Run(25000)
	if err != nil {
		t.Fatal(err)
	}
	if st.Committed != 25000 {
		t.Fatalf("committed %d", st.Committed)
	}
	// Re-fetched instructions inflate Fetched beyond Committed.
	if st.Fetched <= st.Committed {
		t.Fatal("flush recovery must re-fetch squashed instructions")
	}
}

func TestConfigPresetsValid(t *testing.T) {
	for _, cfg := range []Config{DefaultConfig(), LittleConfig(), BigConfig()} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("preset invalid: %v", err)
		}
	}
}

func TestMachineWidthOrdersIPC(t *testing.T) {
	// Wider machines extract more ILP from the same trace.
	ipc := func(cfg Config) float64 {
		prof := mustProfile(t, "sjeng")
		gen, _ := workload.NewGenerator(prof, 11)
		cfg.MispredictRate = prof.MispredictRate
		p, err := New(cfg, gen, fault.New(fault.DefaultConfig(11)), fault.VNominal)
		if err != nil {
			t.Fatal(err)
		}
		p.PrefillData(gen.WarmRegion())
		if err := p.Warmup(15000); err != nil {
			t.Fatal(err)
		}
		st, err := p.Run(40000)
		if err != nil {
			t.Fatal(err)
		}
		return st.IPC()
	}
	little, core1, big := ipc(LittleConfig()), ipc(DefaultConfig()), ipc(BigConfig())
	if !(little < core1 && core1 < big) {
		t.Fatalf("width scaling broken: little=%.3f core1=%.3f big=%.3f", little, core1, big)
	}
}

// TestRandomizedInvariants runs many small simulations across random
// (scheme, voltage, seed, benchmark) combinations and checks the invariants
// that must hold universally.
func TestRandomizedInvariants(t *testing.T) {
	src := rng.New(99)
	names := workload.Names()
	for trial := 0; trial < 24; trial++ {
		name := names[src.Intn(len(names))]
		prof := mustProfile(t, name)
		scheme := core.Scheme(src.Intn(int(core.NumSchemes)))
		vdd := []float64{fault.VNominal, fault.VLowFault, fault.VHighFault}[src.Intn(3)]
		seed := src.Uint64()

		gen, err := workload.NewGenerator(prof, seed)
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		cfg.Scheme = scheme
		cfg.MispredictRate = prof.MispredictRate
		cfg.Seed = seed
		cfg.FullFlushReplay = src.Bool(0.3)
		fc := fault.DefaultConfig(seed)
		fc.Bias = prof.FaultBias
		p, err := New(cfg, gen, fault.New(fc), vdd)
		if err != nil {
			t.Fatal(err)
		}
		n := uint64(4000 + src.Intn(8000))
		st, err := p.Run(n)
		if err != nil {
			t.Fatalf("%s/%v@%.2f seed=%d: %v", name, scheme, vdd, seed, err)
		}

		if st.Committed != n {
			t.Fatalf("committed %d != %d", st.Committed, n)
		}
		if st.Cycles == 0 || st.IPC() <= 0 || st.IPC() > float64(cfg.Width) {
			t.Fatalf("IPC %v out of range", st.IPC())
		}
		if st.Fetched < st.Committed || st.Dispatched < st.Committed || st.Selected < st.Committed {
			t.Fatalf("pipeline stage counts below committed: %+v", st)
		}
		if c := st.Coverage(); c < 0 || c > 1 {
			t.Fatalf("coverage %v", c)
		}
		if vdd >= fault.VNominal && st.Faults != 0 {
			t.Fatalf("faults at nominal voltage: %d", st.Faults)
		}
		if scheme == core.Razor && st.PredictedFaults != 0 {
			t.Fatal("Razor predicted")
		}
		if !scheme.Confined() && st.ConfinedEvents != 0 {
			t.Fatalf("%v produced confined events", scheme)
		}
		var byStage uint64
		for _, c := range st.FaultsByStage {
			byStage += c
		}
		if byStage != st.Faults {
			t.Fatalf("stage fault counts inconsistent: %d vs %d", byStage, st.Faults)
		}
		if st.PredictedFaults+st.Mispredicted > st.Faults {
			t.Fatalf("handled faults %d exceed total %d",
				st.PredictedFaults+st.Mispredicted, st.Faults)
		}
	}
}
