package pipeline

// Fault-injection tests: a deterministic FaultOracle drives violations into
// specific stages so each handling path of §2.2/§3.3 is exercised and
// checked in isolation — something the hash-derived production fault model
// cannot guarantee.

import (
	"testing"

	"tvsched/internal/core"
	"tvsched/internal/fault"
	"tvsched/internal/isa"
)

// injector violates in exactly one stage for every everyN-th dynamic
// instruction whose class passes the filter.
type injector struct {
	stage  isa.Stage
	everyN uint64
}

func (in *injector) Violates(pc uint64, stage isa.Stage, env *fault.Env, seq uint64) bool {
	if stage != in.stage || env.VDD() >= fault.VNominal {
		return false
	}
	return seq%in.everyN == 0
}

func (in *injector) Margin(uint64, isa.Stage) float64 { return 0.95 }

// allALU produces independent single-cycle ALU work.
func allALU() *sliceSource {
	insts := make([]isa.Inst, 16)
	for i := range insts {
		insts[i] = isa.Inst{
			PC:    uint64(0x400000 + 4*i),
			Class: isa.IntALU,
			Dest:  int8(1 + i), Src1: 28, Src2: 29,
			NextPC: uint64(0x400000 + 4*((i+1)%16)),
		}
	}
	return &sliceSource{insts: insts}
}

func allLoads() *sliceSource {
	insts := make([]isa.Inst, 16)
	for i := range insts {
		insts[i] = isa.Inst{
			PC:    uint64(0x400000 + 4*i),
			Class: isa.Load,
			Dest:  int8(1 + i), Src1: 28, Src2: -1,
			Addr:   uint64(0x1000_0000 + 64*i),
			NextPC: uint64(0x400000 + 4*((i+1)%16)),
		}
	}
	return &sliceSource{insts: insts}
}

func runInjected(t *testing.T, scheme core.Scheme, stage isa.Stage, src Source, n uint64) Stats {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Scheme = scheme
	p, err := New(cfg, src, &injector{stage: stage, everyN: 10}, fault.VHighFault)
	if err != nil {
		t.Fatal(err)
	}
	st, err := p.Run(n)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestInjectIssueStage(t *testing.T) {
	st := runInjected(t, core.ABS, isa.Issue, allALU(), 20000)
	if st.FaultsByStage[isa.Issue] != st.Faults || st.Faults == 0 {
		t.Fatalf("injection missed: %+v", st.FaultsByStage)
	}
	if st.ConfinedEvents == 0 || st.SlotFreezes == 0 {
		t.Fatal("issue-stage faults must confine via slot freezes")
	}
}

func TestInjectIssueVsExecuteSemantics(t *testing.T) {
	// The §3.3.1 reading checked directly: on a serial dependency chain,
	// an issue-stage violation costs only a slot freeze (spare lanes absorb
	// it; the chain keeps its 1-IPC pace), while an execute-stage violation
	// (Figure 2) delays the result itself and halves chain throughput.
	run := func(stage isa.Stage) Stats {
		cfg := DefaultConfig()
		cfg.Scheme = core.ABS
		p, err := New(cfg, chainSource(), &injector{stage: stage, everyN: 1}, fault.VHighFault)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Warmup(2000); err != nil {
			t.Fatal(err)
		}
		st, err := p.Run(10000)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	issue := run(isa.Issue)
	exec := run(isa.Execute)
	if ipc := issue.IPC(); ipc < 0.93 {
		t.Fatalf("issue-stage faults on a chain cost %v IPC; slot freeze should be absorbed", ipc)
	}
	if ipc := exec.IPC(); ipc > 0.6 {
		t.Fatalf("execute-stage faults on a chain should halve throughput, IPC %v", ipc)
	}
}

func TestInjectExecuteStage(t *testing.T) {
	st := runInjected(t, core.ABS, isa.Execute, allALU(), 20000)
	if st.FaultsByStage[isa.Execute] != st.Faults || st.Faults == 0 {
		t.Fatal("injection missed execute stage")
	}
	if st.ConfinedEvents == 0 {
		t.Fatal("execute faults must be confined")
	}
	// Figure 2 semantics: the faulty instruction takes an extra cycle. With
	// 10% of independent single-cycle ops delayed, throughput dips but only
	// mildly.
	free := mustRun(t, DefaultConfig(), allALU(), fault.VNominal, 20000)
	if st.IPC() >= free.IPC() {
		t.Fatal("execute-stage faults should cost something")
	}
}

func TestInjectMemoryStage(t *testing.T) {
	st := runInjected(t, core.ABS, isa.Memory, allLoads(), 20000)
	if st.FaultsByStage[isa.Memory] != st.Faults || st.Faults == 0 {
		t.Fatal("injection missed memory stage")
	}
	if st.ConfinedEvents == 0 || st.SlotFreezes == 0 {
		t.Fatal("memory faults must freeze the CAM slot (§3.3.4)")
	}
}

func TestInjectWritebackStage(t *testing.T) {
	st := runInjected(t, core.ABS, isa.Writeback, allALU(), 20000)
	if st.FaultsByStage[isa.Writeback] != st.Faults || st.Faults == 0 {
		t.Fatal("injection missed writeback stage")
	}
	if st.ConfinedEvents == 0 {
		t.Fatal("writeback faults must recirculate the slot (§3.3.5)")
	}
}

func TestInjectRegReadStage(t *testing.T) {
	st := runInjected(t, core.ABS, isa.RegRead, allALU(), 20000)
	if st.FaultsByStage[isa.RegRead] != st.Faults || st.Faults == 0 {
		t.Fatal("injection missed regread stage")
	}
	if st.ConfinedEvents == 0 || st.SlotFreezes == 0 {
		t.Fatal("regread faults must block the read port (§3.3.2)")
	}
}

func TestInjectInOrderStages(t *testing.T) {
	// Rename/dispatch/retire faults take the in-order stall path (§2.2)
	// under the proposed schemes.
	for _, stage := range []isa.Stage{isa.Rename, isa.Dispatch, isa.Retire} {
		st := runInjected(t, core.ABS, stage, allALU(), 10000)
		if st.Faults == 0 {
			t.Fatalf("injection missed %v", stage)
		}
		if st.FrontStalls == 0 {
			t.Fatalf("%v faults must use front-end stalls, got %+v", stage, st)
		}
		if st.ConfinedEvents != 0 {
			t.Fatalf("%v faults must not use OoO confinement", stage)
		}
	}
}

func TestInjectInOrderStagesUnderEP(t *testing.T) {
	for _, stage := range []isa.Stage{isa.Rename, isa.Retire} {
		st := runInjected(t, core.EP, stage, allALU(), 10000)
		if st.GlobalStalls == 0 {
			t.Fatalf("EP must stall globally for %v faults", stage)
		}
	}
}

func TestInjectFetchStage(t *testing.T) {
	// Fetch/decode violations are replay-only in every scheme (§2.2).
	st := runInjected(t, core.ABS, isa.Fetch, allALU(), 10000)
	if st.Faults == 0 || st.Replays == 0 {
		t.Fatalf("fetch faults must replay: %+v", st)
	}
	if st.PredictedFaults != 0 {
		t.Fatal("fetch faults cannot be handled predictively")
	}
}

func TestInjectRazorRepaysAll(t *testing.T) {
	st := runInjected(t, core.Razor, isa.Execute, allALU(), 20000)
	if st.Replays == 0 || st.PredictedFaults != 0 || st.ConfinedEvents != 0 {
		t.Fatalf("Razor must replay everything: %+v", st)
	}
	// Replays are bounded by faults (each instance replays at most once).
	if st.Replays > st.Faults {
		t.Fatalf("replays %d exceed faults %d", st.Replays, st.Faults)
	}
}

func TestInjectEveryInstructionFaulty(t *testing.T) {
	// Stress: 100% fault rate in the issue stage must still complete and
	// stay correct (forward progress with every slot frozen every cycle).
	cfg := DefaultConfig()
	cfg.Scheme = core.ABS
	p, err := New(cfg, allALU(), &injector{stage: isa.Issue, everyN: 1}, fault.VHighFault)
	if err != nil {
		t.Fatal(err)
	}
	st, err := p.Run(5000)
	if err != nil {
		t.Fatal(err)
	}
	if st.Committed != 5000 {
		t.Fatalf("committed %d", st.Committed)
	}
	if st.FaultRate() < 0.99 {
		t.Fatalf("fault rate %v, want ~1", st.FaultRate())
	}
}

func TestInjectedCoverageReachesOne(t *testing.T) {
	// A perfectly periodic faulty PC set is exactly what the TEP learns:
	// after warmup, coverage approaches 1 and replays stop.
	cfg := DefaultConfig()
	cfg.Scheme = core.ABS
	p, err := New(cfg, allALU(), &injector{stage: isa.Execute, everyN: 1}, fault.VHighFault)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Warmup(2000); err != nil {
		t.Fatal(err)
	}
	st, err := p.Run(10000)
	if err != nil {
		t.Fatal(err)
	}
	if cov := st.Coverage(); cov < 0.999 {
		t.Fatalf("steady-state coverage %v for fully deterministic faults", cov)
	}
	if st.Replays != 0 {
		t.Fatalf("replays %d after warmup on deterministic faults", st.Replays)
	}
}
