package pipeline

import (
	"tvsched/internal/isa"
	"tvsched/internal/mem"
	"tvsched/internal/obs"
)

// Stats aggregates everything the experiments and the energy model need.
type Stats struct {
	// Progress.
	Cycles    uint64
	Committed uint64

	// Activity counters (include squashed/replayed work — energy is spent
	// whether or not the work commits).
	Fetched       uint64 // instructions entering the front end, incl. refetch
	Dispatched    uint64
	Selected      uint64 // issue-stage grants
	Broadcasts    uint64 // tag broadcasts
	ExecByClass   [isa.NumClasses]uint64
	StoresRetired uint64

	// Control flow.
	BranchMispredicts uint64

	// Timing-violation accounting.
	Faults          uint64 // dynamic instances whose ground truth violates
	FaultsByStage   [isa.NumStages]uint64
	PredictedFaults uint64 // violations handled via early prediction
	FalsePositives  uint64 // predicted faulty, did not actually violate
	Mispredicted    uint64 // violations not predicted -> replay
	Replays         uint64 // replay recoveries triggered
	SquashedInsts   uint64 // instructions flushed by replays
	GlobalStalls    uint64 // EP whole-pipeline stall cycles
	FrontStalls     uint64 // in-order-engine stall cycles (§2.2)
	ConfinedEvents  uint64 // VTE confined-handling activations
	SlotFreezes     uint64 // issue-slot/FUSR freezes applied (§3.2.3)
	CriticalMarks   uint64 // CDL critical determinations stored in the TEP

	// Graceful-degradation supervisor activity (zero when unsupervised).
	SupEscalations   uint64 // monitor-driven level raises
	SupDeescalations uint64 // hysteresis level drops after quiet windows
	SupWatchdogFires uint64 // no-forward-progress watchdog recoveries

	// Occupancy diagnostics (per-cycle sums; divide by Cycles for means).
	SumIQOcc      uint64
	SumROBOcc     uint64
	SumReadyCands uint64
	SumFrontQ     uint64

	// Dispatch stall cycles by cause.
	StallROB, StallIQ, StallLSQ, StallPhys uint64

	// Memory system snapshot (filled at the end of Run).
	L1I, L1D, L2 mem.CacheStats
}

// MeanIQOcc returns the average issue-queue occupancy.
func (s *Stats) MeanIQOcc() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.SumIQOcc) / float64(s.Cycles)
}

// MeanROBOcc returns the average reorder-buffer occupancy.
func (s *Stats) MeanROBOcc() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.SumROBOcc) / float64(s.Cycles)
}

// Expected builds the obs.Auditor reconciliation view of these counters.
// samplePeriod is the KindSample cadence the run was configured with (pass
// the effective period: Config.SamplePeriod, or 64 if that was zero; 0 skips
// the sample-cadence checks). The observer must have covered exactly the
// cycles these Stats cover — attached for the whole run, or reset alongside
// the warmup stats reset.
func (s *Stats) Expected(samplePeriod uint64) obs.Expected {
	return obs.Expected{
		Cycles:                s.Cycles,
		Fetched:               s.Fetched,
		Dispatched:            s.Dispatched,
		Selected:              s.Selected,
		Committed:             s.Committed,
		PredictedViolations:   s.PredictedFaults + s.FalsePositives,
		ActualViolations:      s.Mispredicted,
		Replays:               s.Replays,
		SquashedInsts:         s.SquashedInsts,
		SlotFreezes:           s.SlotFreezes,
		GlobalStalls:          s.GlobalStalls,
		FrontStalls:           s.FrontStalls,
		DispatchStalls:        s.StallROB + s.StallIQ + s.StallLSQ + s.StallPhys,
		SumIQOcc:              s.SumIQOcc,
		SumROBOcc:             s.SumROBOcc,
		SamplePeriod:          samplePeriod,
		SupervisorTransitions: s.SupEscalations + s.SupDeescalations + s.SupWatchdogFires,
	}
}

// IPC returns committed instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Committed) / float64(s.Cycles)
}

// FaultRate returns dynamic violations per committed instruction (the FR of
// Table 1, as a fraction).
func (s *Stats) FaultRate() float64 {
	if s.Committed == 0 {
		return 0
	}
	return float64(s.Faults) / float64(s.Committed)
}

// Coverage returns the fraction of violations that were predicted early.
func (s *Stats) Coverage() float64 {
	if s.Faults == 0 {
		return 1
	}
	return float64(s.PredictedFaults) / float64(s.Faults)
}
