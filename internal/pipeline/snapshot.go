package pipeline

import (
	"errors"
	"fmt"
	"math"

	"tvsched/internal/snap"
	"tvsched/internal/tep"
)

// This file implements the warm-state checkpoint of DESIGN.md §13: a
// deterministic, versioned byte snapshot of a drained machine, taken after
// warmup and restored into freshly built pipelines so a sweep pays the
// warmup cost once per (benchmark, seed) instead of once per cell.
//
// The snapshot deliberately covers only drained machines — no instructions
// in flight — so the only state that crosses the boundary is the
// micro-architectural warm state (caches, branch predictor, TEP table, RNG
// streams, generator cursors) plus a handful of scalar counters. The wire
// format is: magic, version, the geometry block (every Config field that
// shapes state or stream consumption — scheme excluded, see SnapshotVersion),
// the scalar block, then each component's codec in a fixed order.

// snapshotMagic marks a pipeline warm-state snapshot ("TVSN").
const snapshotMagic uint32 = 0x5456534e

// SnapshotVersion is the wire-format version of SnapshotState; RestoreState
// refuses any other. Bump it whenever the byte layout or the semantics of
// restored state change.
//
// The geometry block excludes Config.Scheme (and the supply voltage, which
// is not part of Config): a snapshot taken after a warmup at the nominal
// supply is provably scheme-independent — at VNominal no instruction
// violates timing, so the TEP table stays empty, criticality marks are
// no-ops, and issue-selection policies order identical candidate sets
// identically — which is exactly what lets one checkpoint serve every
// (scheme, VDD) cell of a sweep.
const SnapshotVersion uint32 = 1

// ErrSnapshotUnsupported wraps every refusal to snapshot or restore that is
// a property of the machine's configuration rather than corrupt bytes.
var ErrSnapshotUnsupported = errors.New("snapshot unsupported")

// StatefulSource is a Source whose stream position can be checkpointed.
// workload.Generator implements it; the asm Machine intentionally does not
// (its architectural state is the program's business, not the simulator's).
type StatefulSource interface {
	Source
	AppendState(*snap.Writer)
	ReadState(*snap.Reader) error
}

// geometry returns the configuration fields a snapshot must agree on as a
// flat list of named words: every field that shapes serialized state or
// drives deterministic stream consumption. Scheme is excluded (see
// SnapshotVersion); observer and debug knobs are excluded because they do
// not affect machine state.
func (c *Config) geometry() [29]struct {
	name string
	v    uint64
} {
	u := func(i int) uint64 { return uint64(i) }
	b := func(f bool) uint64 {
		if f {
			return 1
		}
		return 0
	}
	return [29]struct {
		name string
		v    uint64
	}{
		{"width", u(c.Width)},
		{"front-depth", u(c.FrontDepth)},
		{"front-queue", u(c.FrontQ)},
		{"rob", u(c.ROBSize)},
		{"iq", u(c.IQSize)},
		{"lq", u(c.LQSize)},
		{"sq", u(c.SQSize)},
		{"phys-regs", u(c.NumPhys)},
		{"simple-alus", u(c.SimpleALUs)},
		{"complex-alus", u(c.ComplexALUs)},
		{"mem-ports", u(c.MemPorts)},
		{"replay-bubble", u(c.ReplayBubble)},
		{"replay-latency", u(c.ReplayLatency)},
		{"full-flush", b(c.FullFlushReplay)},
		{"mispredict-rate", math.Float64bits(c.MispredictRate)},
		{"seed", c.Seed},
		{"ct", u(c.CT)},
		{"tep-entries", u(c.TEP.Entries)},
		{"tep-history", u(c.TEP.HistoryBits)},
		{"l1i-size", u(c.Hierarchy.L1I.SizeBytes)},
		{"l1i-ways", u(c.Hierarchy.L1I.Ways)},
		{"l1i-line", u(c.Hierarchy.L1I.LineBytes)},
		{"l1d-size", u(c.Hierarchy.L1D.SizeBytes)},
		{"l1d-ways", u(c.Hierarchy.L1D.Ways)},
		{"l1d-line", u(c.Hierarchy.L1D.LineBytes)},
		{"l2-size", u(c.Hierarchy.L2.SizeBytes)},
		{"l2-ways", u(c.Hierarchy.L2.Ways)},
		{"l2-line", u(c.Hierarchy.L2.LineBytes)},
		{"mem-latency", u(c.Hierarchy.MemLatency)},
	}
}

// snapshotable reports why this machine cannot be snapshotted or restored,
// or nil. The refusals are configuration properties shared by both
// directions.
func (p *Pipeline) snapshotable() error {
	if p.sup != nil {
		return fmt.Errorf("pipeline: %w: supervised machine (supervisor history is not serialized)", ErrSnapshotUnsupported)
	}
	if p.cfg.NewPredictor != nil {
		return fmt.Errorf("pipeline: %w: custom predictor implementation", ErrSnapshotUnsupported)
	}
	if _, ok := p.src.(StatefulSource); !ok {
		return fmt.Errorf("pipeline: %w: source %T cannot be checkpointed", ErrSnapshotUnsupported, p.src)
	}
	return nil
}

// SnapshotState serializes the warm state of a drained machine. The result
// is deterministic: the same machine state yields the same bytes. It fails
// on a machine with instructions in flight, a supervisor or hazard timeline
// attached, a custom predictor, or a source that cannot be checkpointed.
func (p *Pipeline) SnapshotState() ([]byte, error) {
	if err := p.CheckDrained(); err != nil {
		return nil, fmt.Errorf("pipeline: snapshot of a non-drained machine: %w", err)
	}
	if err := p.snapshotable(); err != nil {
		return nil, err
	}
	w := &snap.Writer{}
	w.U32(snapshotMagic)
	w.U32(SnapshotVersion)
	for _, f := range p.cfg.geometry() {
		w.U64(f.v)
	}
	w.U64(p.cycle)
	w.U64(p.seq)
	w.U64(p.fetchLimit)
	w.U64(p.newFetched)
	w.U64(p.lastFetchLine)
	w.U64(p.fetchResumeAt)
	w.I64(int64(p.robHead))
	w.U8(p.iqAlloc)
	// Freeze credits can outlive a drained run (padding queued by the last
	// committed group), so they are part of the state.
	w.I64(int64(p.globalFreeze))
	w.I64(int64(p.globalFreezeReplay))
	w.I64(int64(p.frontFreeze))
	w.I64(int64(p.frontFreezeReplay))
	// A drained machine's fetch redirect blocker is always resolved (the
	// branch retired); only the fact that fetch still owes the redirect
	// cycle needs to survive.
	w.Bool(p.fetchBlockedBy != nil)
	if err := p.env.AppendState(w); err != nil {
		return nil, err
	}
	p.hier.AppendState(w)
	p.bp.AppendState(w)
	p.noise.AppendState(w)
	p.tep.(*tep.TEP).AppendState(w)
	p.fusr.AppendState(w)
	p.src.(StatefulSource).AppendState(w)
	return w.B, nil
}

// RestoreState loads a snapshot produced by SnapshotState into this machine,
// which must be freshly built (drained) with a configuration whose geometry
// matches the snapshot's — scheme may differ, and the supply voltage may be
// retargeted with SetVDD afterwards. Statistics are zeroed, mirroring the
// warmup boundary: a restored machine behaves exactly like one that just
// finished WarmupContext.
func (p *Pipeline) RestoreState(b []byte) error {
	if err := p.CheckDrained(); err != nil {
		return fmt.Errorf("pipeline: restore into a non-drained machine: %w", err)
	}
	if err := p.snapshotable(); err != nil {
		return err
	}
	r := snap.NewReader(b)
	if m := r.U32(); m != snapshotMagic {
		return fmt.Errorf("%w: not a pipeline snapshot (magic %#x)", snap.ErrCorrupt, m)
	}
	if v := r.U32(); v != SnapshotVersion {
		return fmt.Errorf("pipeline: %w: snapshot version %d, this build reads %d",
			ErrSnapshotUnsupported, v, SnapshotVersion)
	}
	for _, f := range p.cfg.geometry() {
		if got := r.U64(); got != f.v && r.Err() == nil {
			return fmt.Errorf("pipeline: %w: geometry mismatch: snapshot %s = %d, machine has %d",
				ErrSnapshotUnsupported, f.name, got, f.v)
		}
	}
	if err := r.Err(); err != nil {
		return err
	}
	p.cycle = r.U64()
	p.seq = r.U64()
	p.fetchLimit = r.U64()
	p.newFetched = r.U64()
	p.lastFetchLine = r.U64()
	p.fetchResumeAt = r.U64()
	p.robHead = int(r.I64())
	p.iqAlloc = r.U8()
	p.globalFreeze = int(r.I64())
	p.globalFreezeReplay = int(r.I64())
	p.frontFreeze = int(r.I64())
	p.frontFreezeReplay = int(r.I64())
	blocked := r.Bool()
	if err := r.Err(); err != nil {
		return err
	}
	if p.robHead < 0 || p.robHead >= p.cfg.ROBSize {
		return fmt.Errorf("%w: robHead %d of %d", snap.ErrCorrupt, p.robHead, p.cfg.ROBSize)
	}
	if p.globalFreeze < 0 || p.globalFreezeReplay < 0 || p.globalFreezeReplay > p.globalFreeze ||
		p.frontFreeze < 0 || p.frontFreezeReplay < 0 || p.frontFreezeReplay > p.frontFreeze {
		return fmt.Errorf("%w: inconsistent freeze credits", snap.ErrCorrupt)
	}
	if err := p.env.ReadState(r); err != nil {
		return err
	}
	if err := p.hier.ReadState(r); err != nil {
		return err
	}
	if err := p.bp.ReadState(r); err != nil {
		return err
	}
	if err := p.noise.ReadState(r); err != nil {
		return err
	}
	if err := p.tep.(*tep.TEP).ReadState(r); err != nil {
		return err
	}
	if err := p.fusr.ReadState(r); err != nil {
		return err
	}
	if err := p.src.(StatefulSource).ReadState(r); err != nil {
		return err
	}
	if err := r.Err(); err != nil {
		return err
	}
	if n := r.Rest(); n != 0 {
		return fmt.Errorf("%w: %d trailing bytes", snap.ErrCorrupt, n)
	}
	// The snapshotted blocker had resolved (it retired before the drain);
	// a stand-in with the same resolved-by-now timing reproduces the one
	// redirect cycle fetch still owes.
	p.fetchBlockedBy = nil
	if blocked {
		p.fetchBlockedBy = &dynInst{execDoneAt: p.cycle}
	}
	// Mirror the warmup boundary: measurement starts here.
	p.stats = Stats{}
	p.pendingIFetch = 0
	return nil
}
