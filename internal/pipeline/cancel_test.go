package pipeline

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"tvsched/internal/fault"
	"tvsched/internal/obs"
	"tvsched/internal/workload"
)

// cancelPollBound is the worst-case number of simulated cycles between a
// context being cancelled and RunContext returning: the poll fires on every
// 256th cycle, plus the cycle in flight when the cancellation lands. The
// serving layer (internal/serve) leans on this bound for per-request
// deadline propagation — if RunContext's poll interval grows, this constant
// and its doc comment must shrink it back.
const cancelPollBound = 256 + 1

// TestRunContextCancellationLatency cancels a simulation mid-run from
// inside the event stream — so the cancellation cycle is known exactly —
// and asserts the pipeline returns within cancelPollBound simulated cycles.
func TestRunContextCancellationLatency(t *testing.T) {
	for _, cancelAt := range []uint64{3000, 5000, 7777} {
		prof := mustProfile(t, "sjeng")
		gen, err := workload.NewGenerator(prof, 1)
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		cfg.MispredictRate = prof.MispredictRate
		cfg.Seed = 1
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		var cancelled atomic.Uint64 // cycle the cancellation landed on
		cfg.Observer = obs.ObserverFunc(func(e obs.Event) {
			if e.Cycle >= cancelAt && cancelled.CompareAndSwap(0, e.Cycle) {
				cancel()
			}
		})
		fc := fault.DefaultConfig(1)
		fc.Bias = prof.FaultBias
		p, err := New(cfg, gen, fault.New(fc), fault.VHighFault)
		if err != nil {
			t.Fatal(err)
		}
		st, err := p.RunContext(ctx, 10_000_000)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelAt=%d: err = %v, want context.Canceled", cancelAt, err)
		}
		cc := cancelled.Load()
		if cc == 0 {
			t.Fatalf("cancelAt=%d: run ended before any event reached cycle %d", cancelAt, cancelAt)
		}
		if st.Cycles < cc || st.Cycles-cc > cancelPollBound {
			t.Errorf("cancelAt=%d: cancelled at cycle %d, returned at cycle %d: latency %d cycles, bound %d",
				cancelAt, cc, st.Cycles, st.Cycles-cc, cancelPollBound)
		}
	}
}
