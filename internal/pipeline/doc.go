// Package pipeline implements the trace-driven, cycle-level out-of-order
// processor model at the heart of the reproduction. This file documents the
// machine in one place; the stage implementations live in pipeline.go.
//
// # Machine organization (Core-1, §4.1)
//
// The model is a 4-wide machine with the paper's Fabscalar Core-1 shape:
//
//	Fetch → Decode → Rename → Dispatch   (in-order front end, FrontDepth cycles)
//	Issue (wakeup/select) → RegRead → Execute [→ Memory] → Writeback  (OoO engine)
//	Retire                               (in-order)
//
// Instructions arrive from a Source as the committed dynamic path (the
// workload generator or a trace file). Wrong-path execution is not
// simulated; instead, fetch stops at a branch the oracle noise model marks
// mispredicted and resumes the cycle after the branch resolves in execute,
// which reproduces the 10-stage misprediction loop.
//
// # Timing abstraction
//
// The simulator is cycle-driven with absolute-cycle bookkeeping per dynamic
// instruction rather than explicit per-stage latches:
//
//   - availAt — when the front end may dispatch it (fetch + FrontDepth);
//   - depReadyAt — when its tag broadcast wakes dependents (select + execute
//     latency, plus memory time for loads, minus the wakeup/select overlap
//     that enables back-to-back issue of single-cycle chains);
//   - execDoneAt — when a branch resolves;
//   - completeAt — when it may retire.
//
// Each cycle runs retire → issue → dispatch → fetch (reverse pipe order), so
// resources freed in one cycle are visible the next.
//
// # Violation handling (§2.2, §3.3)
//
// Ground truth for each dynamic instruction — whether its sensitized paths
// violate timing in some stage at the current voltage — is fixed at first
// fetch by the FaultOracle. The TEP is looked up in parallel with decode and
// its prediction rides with the instruction. At issue time the scheme's
// decision table (core.Respond) is applied per stage:
//
//   - confined (ABS/FFS/CDS, OoO stages): issue-stage violations freeze the
//     instruction's issue slot for one cycle and nothing else (§3.3.1 — the
//     two-cycle CAM window overlaps the select stage); violations in
//     register read / execute / memory / writeback give the instruction one
//     extra cycle in that stage, freeze the corresponding port/slot, and
//     delay the tag broadcast so dependents hold back one cycle (Figure 2);
//   - global stall (EP): the whole pipeline freezes one cycle per predicted
//     violation, with every in-flight completion shifted (true
//     recirculation);
//   - front stall (in-order engine under the proposed schemes): rename/
//     dispatch/retire recirculate one cycle while the OoO engine runs on;
//   - replay (unpredicted violations, fetch/decode violations, and
//     everything under Razor): selective RazorII-style recovery by default —
//     the errant instruction re-executes with ReplayLatency extra cycles
//     behind a ReplayBubble machine stall; Config.FullFlushReplay switches
//     to architectural flush-and-refetch for the ablation.
//
// # Structures
//
// ROB (ring buffer), issue queue (unordered slice; the select stage orders
// candidates by the active policy each cycle), load/store queue occupancy
// with exact-address store-to-load forwarding, physical-register free
// counter (NumPhys − 32 in-flight destinations), a rename table mapping
// architectural registers to in-flight producers, and the FUSR lane state
// (internal/core). Loads remember their cache-fill completion time across
// squashes so replay cannot erase miss latency already in flight.
package pipeline
