package pipeline

import (
	"errors"
	"fmt"

	"tvsched/internal/isa"
)

// This file is the opt-in correctness harness for the simulator's resource
// bookkeeping (Config.Debug wires it into every cycle of RunContext). The
// paper's comparisons live or die on cycle accounting being exact, so every
// conservation law the machine relies on is asserted here rather than trusted:
//
//   - physical registers:   freePhys + in-flight destinations == NumPhys − 32
//   - LSQ counters:         loads/stores == ROB contents, within LQ/SQ bounds
//   - store-forwarding CAM: the storeAt multiset matches in-flight stores
//   - ROB:                  ring within capacity, seq strictly increasing,
//     no retired entries resident
//   - issue queue:          every entry has inIQ set, is unissued, and is
//     exactly the set of unissued ROB entries
//   - front end:            frontQ within capacity, in fetch order, strictly
//     younger than the whole ROB
//   - stall bookkeeping:    replay-cause freeze credit never exceeds the
//     total freeze credit
//
// CheckDrained adds the end-of-run law: a successful RunContext commits every
// instruction it fetched, so the machine must return to empty with every
// resource released.

// CheckInvariants verifies the machine's resource-conservation invariants at
// a cycle boundary. It returns nil when the state is consistent and an error
// joining every violated invariant otherwise. Safe to call at any cycle
// boundary; with Config.Debug it runs automatically after every step.
func (p *Pipeline) CheckInvariants() error {
	var errs []error
	fail := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf("invariant: "+format, args...))
	}

	if p.robCount < 0 || p.robCount > p.cfg.ROBSize {
		fail("robCount %d outside [0,%d]", p.robCount, p.cfg.ROBSize)
		return errors.Join(errs...) // the ROB walk below would be garbage
	}

	// One walk over the ROB collects everything the window-side laws need.
	var (
		dests, loads, stores int
		unissued             = make(map[*dynInst]bool)
		storeAt              = make(map[uint64]int)
		prevSeq              uint64
		maxSeq               uint64
	)
	for i := 0; i < p.robCount; i++ {
		e := p.rob[(p.robHead+i)%p.cfg.ROBSize]
		if e == nil {
			fail("nil ROB entry at slot %d", i)
			continue
		}
		if e.retired {
			fail("retired seq %d still resident in ROB slot %d", e.seq, i)
		}
		if i > 0 && e.seq <= prevSeq {
			fail("ROB seq not strictly increasing: %d after %d (slot %d)", e.seq, prevSeq, i)
		}
		prevSeq = e.seq
		maxSeq = e.seq
		if e.in.Dest > 0 {
			dests++
		}
		switch e.in.Class {
		case isa.Load:
			loads++
		case isa.Store:
			stores++
			storeAt[e.in.Addr]++
		}
		if !e.issued {
			unissued[e] = true
		}
	}

	// Physical-register conservation: every in-flight destination holds one
	// register; everything else is free.
	inFlight := p.cfg.NumPhys - isa.NumArchRegs
	if p.freePhys < 0 || p.freePhys > inFlight {
		fail("freePhys %d outside [0,%d]", p.freePhys, inFlight)
	}
	if p.freePhys+dests != inFlight {
		fail("phys conservation: freePhys %d + %d in-flight dests != %d", p.freePhys, dests, inFlight)
	}

	// LSQ counters mirror the ROB contents and respect their capacities.
	if loads != p.loads {
		fail("loads counter %d, ROB holds %d loads", p.loads, loads)
	}
	if stores != p.stores {
		fail("stores counter %d, ROB holds %d stores", p.stores, stores)
	}
	if p.loads < 0 || p.loads > p.cfg.LQSize {
		fail("loads %d outside [0,%d]", p.loads, p.cfg.LQSize)
	}
	if p.stores < 0 || p.stores > p.cfg.SQSize {
		fail("stores %d outside [0,%d]", p.stores, p.cfg.SQSize)
	}

	// The store-forwarding CAM is exactly the multiset of in-flight store
	// addresses: a leak turns into phantom store-to-load forwards.
	for addr, n := range storeAt {
		if got := p.storeAt[addr]; got != n {
			fail("storeAt[%#x] = %d, ROB holds %d stores to it", addr, got, n)
		}
	}
	for addr, n := range p.storeAt {
		if n <= 0 {
			fail("storeAt[%#x] = %d, zero/negative entries must be deleted", addr, n)
		}
		if _, ok := storeAt[addr]; !ok {
			fail("storeAt[%#x] = %d with no in-flight store to it", addr, n)
		}
	}

	// The issue queue is exactly the unissued slice of the ROB.
	if len(p.iq) > p.cfg.IQSize {
		fail("iq holds %d entries, capacity %d", len(p.iq), p.cfg.IQSize)
	}
	if len(p.iq) != len(unissued) {
		fail("iq holds %d entries, ROB holds %d unissued", len(p.iq), len(unissued))
	}
	for i, e := range p.iq {
		if !e.inIQ {
			fail("iq[%d] (seq %d) has inIQ clear", i, e.seq)
		}
		if e.issued {
			fail("iq[%d] (seq %d) already issued", i, e.seq)
		}
		if e.retired {
			fail("iq[%d] (seq %d) already retired", i, e.seq)
		}
		if !unissued[e] {
			fail("iq[%d] (seq %d) not an unissued ROB entry", i, e.seq)
		}
	}

	// Front-end queue: bounded, in fetch order, strictly younger than the ROB.
	if p.frontCount > p.cfg.FrontQ {
		fail("frontQ holds %d entries, capacity %d", p.frontCount, p.cfg.FrontQ)
	}
	for i := 0; i < p.frontCount; i++ {
		e := p.frontAt(i)
		if e == nil {
			fail("nil frontQ entry at slot %d", i)
			continue
		}
		if e.inIQ || e.issued || e.retired {
			fail("frontQ[%d] (seq %d) already entered the window", i, e.seq)
		}
		if i > 0 && p.frontAt(i-1) != nil && e.seq <= p.frontAt(i-1).seq {
			fail("frontQ seq not strictly increasing: %d after %d", e.seq, p.frontAt(i-1).seq)
		}
		if p.robCount > 0 && e.seq <= maxSeq {
			fail("frontQ[%d] (seq %d) not younger than ROB tail (seq %d)", i, e.seq, maxSeq)
		}
	}

	// Stall bookkeeping: the replay-cause credit is a subset of the total.
	if p.globalFreeze < 0 || p.globalFreezeReplay < 0 || p.globalFreezeReplay > p.globalFreeze {
		fail("global freeze credit inconsistent: total %d, replay-cause %d", p.globalFreeze, p.globalFreezeReplay)
	}
	if p.frontFreeze < 0 || p.frontFreezeReplay < 0 || p.frontFreezeReplay > p.frontFreeze {
		fail("front freeze credit inconsistent: total %d, replay-cause %d", p.frontFreeze, p.frontFreezeReplay)
	}

	return errors.Join(errs...)
}

// CheckDrained verifies the machine is empty with every resource released —
// the state a successful run must end in, because the run's fetch budget
// equals its commit target, so every fetched instruction has committed.
func (p *Pipeline) CheckDrained() error {
	var errs []error
	fail := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf("drain: "+format, args...))
	}
	if p.robCount != 0 {
		fail("%d instructions still in the ROB", p.robCount)
	}
	if len(p.iq) != 0 {
		fail("%d instructions still in the issue queue", len(p.iq))
	}
	if p.frontCount != 0 {
		fail("%d instructions still in the front-end queue", p.frontCount)
	}
	if len(p.replayQ) != 0 {
		fail("%d squashed instructions still awaiting re-fetch", len(p.replayQ))
	}
	if p.pendingNew != nil {
		fail("a fetched-but-unconsumed instruction is pending (seq %d)", p.pendingNew.seq)
	}
	if p.pendingFlush != nil {
		fail("a flush is still pending (seq %d)", p.pendingFlush.seq)
	}
	if p.loads != 0 || p.stores != 0 {
		fail("LSQ counters not released: %d loads, %d stores", p.loads, p.stores)
	}
	if len(p.storeAt) != 0 {
		fail("store-forwarding CAM not released: %d addresses", len(p.storeAt))
	}
	if full := p.cfg.NumPhys - isa.NumArchRegs; p.freePhys != full {
		fail("physical registers not released: %d free of %d", p.freePhys, full)
	}
	return errors.Join(errs...)
}
