package pipeline

import (
	"errors"
	"testing"

	"tvsched/internal/core"
	"tvsched/internal/fault"
	"tvsched/internal/workload"
)

// snapPipe builds the production-shaped pipeline (workload generator + fault
// model) the snapshot layer supports.
func snapPipe(t *testing.T, bench string, scheme core.Scheme, seed uint64, vdd float64) *Pipeline {
	t.Helper()
	prof, err := workload.Lookup(bench)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewGenerator(prof, seed)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Scheme = scheme
	cfg.MispredictRate = prof.MispredictRate
	cfg.Seed = seed
	fcfg := fault.DefaultConfig(seed)
	fcfg.Bias = prof.FaultBias
	p, err := New(cfg, gen, fault.New(fcfg), vdd)
	if err != nil {
		t.Fatal(err)
	}
	p.PrefillData(gen.WarmRegion())
	return p
}

// TestSnapshotRestoreEquivalence is the tentpole property: warmup → snapshot
// → restore into a fresh machine → run must be statistic-for-statistic
// identical to warmup → run straight through on the original.
func TestSnapshotRestoreEquivalence(t *testing.T) {
	const warmup, run = 30000, 20000
	p1 := snapPipe(t, "bzip2", core.ABS, 7, fault.VNominal)
	if err := p1.Warmup(warmup); err != nil {
		t.Fatal(err)
	}
	blob, err := p1.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic bytes: snapshotting again must not change anything.
	blob2, err := p1.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	if string(blob) != string(blob2) {
		t.Fatal("snapshot bytes not deterministic")
	}

	p2 := snapPipe(t, "bzip2", core.ABS, 7, fault.VNominal)
	if err := p2.RestoreState(blob); err != nil {
		t.Fatal(err)
	}

	// Retarget both to the faulty supply and run.
	p1.SetVDD(fault.VHighFault)
	p2.SetVDD(fault.VHighFault)
	s1, err := p1.Run(run)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := p2.Run(run)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Fatalf("restored run diverged from straight-through run:\n  %+v\n  %+v", s1, s2)
	}
	if err := p2.CheckDrained(); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotSchemeIndependent pins the property the checkpointed sweep is
// built on: after a warmup at the nominal supply (where nothing violates
// timing), the warm state is identical across schemes, so a snapshot taken
// on one scheme's machine restores into another's and reproduces exactly the
// run a natively warmed machine of that scheme would produce.
func TestSnapshotSchemeIndependent(t *testing.T) {
	const warmup, run = 30000, 20000
	warm := func(scheme core.Scheme) []byte {
		p := snapPipe(t, "sjeng", scheme, 11, fault.VNominal)
		if err := p.Warmup(warmup); err != nil {
			t.Fatal(err)
		}
		blob, err := p.SnapshotState()
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}
	absBlob := warm(core.ABS)
	for _, scheme := range []core.Scheme{core.Razor, core.EP, core.FFS, core.CDS} {
		if got := warm(scheme); string(got) != string(absBlob) {
			t.Fatalf("%v warm state differs from ABS warm state at nominal supply", scheme)
		}
		// Cross-restore: ABS-taken snapshot into a scheme-native machine.
		pNative := snapPipe(t, "sjeng", scheme, 11, fault.VNominal)
		if err := pNative.Warmup(warmup); err != nil {
			t.Fatal(err)
		}
		pRestored := snapPipe(t, "sjeng", scheme, 11, fault.VNominal)
		if err := pRestored.RestoreState(absBlob); err != nil {
			t.Fatal(err)
		}
		pNative.SetVDD(fault.VHighFault)
		pRestored.SetVDD(fault.VHighFault)
		sN, err := pNative.Run(run)
		if err != nil {
			t.Fatal(err)
		}
		sR, err := pRestored.Run(run)
		if err != nil {
			t.Fatal(err)
		}
		if sN != sR {
			t.Fatalf("%v: cross-scheme restore diverged from native warmup", scheme)
		}
	}
}

// TestSnapshotRefusals pins every unsupported-configuration refusal.
func TestSnapshotRefusals(t *testing.T) {
	p := snapPipe(t, "bzip2", core.ABS, 1, fault.VNominal)
	if err := p.Warmup(5000); err != nil {
		t.Fatal(err)
	}

	// Non-drained machine: hand a throwaway instance fetch budget and step
	// until instructions are in flight; snapshot must refuse.
	pin := snapPipe(t, "bzip2", core.ABS, 3, fault.VNominal)
	pin.fetchLimit += 1000
	for pin.robCount == 0 && pin.frontCount == 0 {
		pin.step()
	}
	if _, err := pin.SnapshotState(); err == nil {
		t.Fatal("in-flight snapshot accepted")
	}

	// Supervised machine.
	profCfg := DefaultConfig()
	pol := core.DefaultSupervisorPolicy()
	profCfg.Supervisor = &pol
	prof, _ := workload.Lookup("bzip2")
	g2, _ := workload.NewGenerator(prof, 1)
	sup, err := New(profCfg, g2, fault.New(fault.DefaultConfig(1)), fault.VNominal)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sup.SnapshotState(); !errors.Is(err, ErrSnapshotUnsupported) {
		t.Fatalf("supervised snapshot: got %v", err)
	}

	// Hazard timeline attached.
	blob, err := p.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	p.SetHazard(fault.HazardFunc(func(uint64) fault.Perturbation { return fault.Neutral() }))
	if _, err := p.SnapshotState(); err == nil {
		t.Fatal("hazard-attached snapshot accepted")
	}
	p.SetHazard(nil)

	// Version / magic / geometry / truncation failures on restore.
	p2 := snapPipe(t, "bzip2", core.ABS, 1, fault.VNominal)
	if err := p2.RestoreState(blob[:40]); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
	bad := append([]byte(nil), blob...)
	bad[0] ^= 0xff
	if err := p2.RestoreState(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
	bad = append([]byte(nil), blob...)
	bad[4] ^= 0xff
	if err := p2.RestoreState(bad); !errors.Is(err, ErrSnapshotUnsupported) {
		t.Fatalf("bad version: got %v", err)
	}
	little := LittleConfig()
	little.MispredictRate = prof.MispredictRate
	little.Seed = 1
	g3, _ := workload.NewGenerator(prof, 1)
	pl, err := New(little, g3, fault.New(fault.DefaultConfig(1)), fault.VNominal)
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.RestoreState(blob); !errors.Is(err, ErrSnapshotUnsupported) {
		t.Fatalf("geometry mismatch: got %v", err)
	}
	if err := p2.RestoreState(blob); err != nil {
		t.Fatalf("clean restore failed after refusal tests: %v", err)
	}
}
