//go:build !race

package pipeline

import (
	"testing"

	"tvsched/internal/fault"
	"tvsched/internal/workload"
)

// TestCycleLoopZeroAlloc pins the observer-off steady-state cycle loop at
// zero heap allocations per run: dynInst records recycle through the arena,
// the front-end ring never reallocates, and select/issue use no closures.
// Guarded by !race because the race runtime changes allocation behaviour.
func TestCycleLoopZeroAlloc(t *testing.T) {
	prof, err := workload.Lookup("bzip2")
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewGenerator(prof, 42)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.MispredictRate = prof.MispredictRate
	cfg.Seed = 42
	fcfg := fault.DefaultConfig(42)
	fcfg.Bias = prof.FaultBias
	p, err := New(cfg, gen, fault.New(fcfg), fault.VHighFault)
	if err != nil {
		t.Fatal(err)
	}
	p.PrefillData(gen.WarmRegion())
	// Reach steady state: caches, predictor, TEP and the store-forwarding
	// map are all warm, so the measured window exercises only the recycled
	// fast path.
	if err := p.Warmup(30000); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := p.Run(2000); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state cycle loop allocates: %.1f allocs per 2000-instruction run, want 0", allocs)
	}
}
