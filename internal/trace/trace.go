// Package trace provides a compact binary on-disk format for committed
// instruction streams, so experiments can be repeated bit-exactly without
// regeneration and users can drive the pipeline model with traces produced
// by their own tools (a Pin/DynamoRIO-style front end, another simulator,
// or the bundled workload generator via cmd/tvtrace).
//
// Format (little-endian, streaming):
//
//	magic "TVTR" | u8 version | uvarint count (0 = unknown/stream)
//	then per instruction:
//	  u8 flags+class | varint ΔPC | [dest u8] [src1 u8] [src2 u8]
//	  [varint Δaddr] [varint Δtarget]
//
// PC, Addr and Target are delta-encoded against the previous record (per
// field), which compresses the strided patterns of real traces well.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"tvsched/internal/isa"
)

// Magic identifies trace files.
const Magic = "TVTR"

// Version is the current format version.
const Version = 1

// flag bits packed with the class in the leading byte.
const (
	flagTaken   = 1 << 5
	flagHasDest = 1 << 6
	flagClassM  = 0x07 // class occupies the low 3 bits
)

// Writer streams instructions to w.
type Writer struct {
	w       *bufio.Writer
	started bool
	count   uint64
	prevPC  uint64
	prevAdr uint64
	prevTgt uint64
	scratch [binary.MaxVarintLen64]byte
}

// NewWriter creates a writer and emits the header. count may be 0 when the
// final length is unknown.
func NewWriter(w io.Writer, count uint64) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(Magic); err != nil {
		return nil, err
	}
	if err := bw.WriteByte(Version); err != nil {
		return nil, err
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], count)
	if _, err := bw.Write(buf[:n]); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

func (w *Writer) putVarint(v int64) error {
	n := binary.PutVarint(w.scratch[:], v)
	_, err := w.w.Write(w.scratch[:n])
	return err
}

// Write appends one instruction.
func (w *Writer) Write(in isa.Inst) error {
	if err := in.Validate(); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	head := byte(in.Class) & flagClassM
	if in.Taken {
		head |= flagTaken
	}
	if in.Dest >= 0 {
		head |= flagHasDest
	}
	if err := w.w.WriteByte(head); err != nil {
		return err
	}
	if err := w.putVarint(int64(in.PC) - int64(w.prevPC)); err != nil {
		return err
	}
	w.prevPC = in.PC
	if in.Dest >= 0 {
		if err := w.w.WriteByte(byte(in.Dest)); err != nil {
			return err
		}
	}
	// Sources are stored biased by +1 so -1 (none) becomes 0.
	if err := w.w.WriteByte(byte(in.Src1 + 1)); err != nil {
		return err
	}
	if err := w.w.WriteByte(byte(in.Src2 + 1)); err != nil {
		return err
	}
	if in.Class.IsMem() {
		if err := w.putVarint(int64(in.Addr) - int64(w.prevAdr)); err != nil {
			return err
		}
		w.prevAdr = in.Addr
	}
	if in.Class == isa.Branch && in.Taken {
		if err := w.putVarint(int64(in.Target) - int64(w.prevTgt)); err != nil {
			return err
		}
		w.prevTgt = in.Target
	}
	w.count++
	w.started = true
	return nil
}

// Count returns the number of records written so far.
func (w *Writer) Count() uint64 { return w.count }

// Flush drains buffered output; call before closing the underlying file.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader streams instructions back; it implements the pipeline's Source
// (after wrapping with Next's error policy, see Source()).
type Reader struct {
	r       *bufio.Reader
	count   uint64 // declared count; 0 = unknown
	read    uint64
	prevPC  uint64
	prevAdr uint64
	prevTgt uint64
	lastPC  uint64
	pending *isa.Inst // one-instruction lookahead for NextPC fixing
	err     error
}

// NewReader validates the header and returns a streaming reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: short header: %w", err)
	}
	if string(magic) != Magic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	if ver != Version {
		return nil, fmt.Errorf("trace: unsupported version %d", ver)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	return &Reader{r: br, count: count}, nil
}

// DeclaredCount returns the count from the header (0 if unknown).
func (r *Reader) DeclaredCount() uint64 { return r.count }

// readOne decodes the next raw record.
func (r *Reader) readOne() (isa.Inst, error) {
	head, err := r.r.ReadByte()
	if err != nil {
		return isa.Inst{}, err // io.EOF at a record boundary is clean
	}
	var in isa.Inst
	in.Class = isa.Class(head & flagClassM)
	if in.Class >= isa.NumClasses {
		return isa.Inst{}, fmt.Errorf("trace: bad class %d", in.Class)
	}
	dpc, err := binary.ReadVarint(r.r)
	if err != nil {
		return isa.Inst{}, unexpected(err)
	}
	in.PC = uint64(int64(r.prevPC) + dpc)
	r.prevPC = in.PC
	in.Dest = -1
	if head&flagHasDest != 0 {
		b, err := r.r.ReadByte()
		if err != nil {
			return isa.Inst{}, unexpected(err)
		}
		in.Dest = int8(b)
	}
	s1, err := r.r.ReadByte()
	if err != nil {
		return isa.Inst{}, unexpected(err)
	}
	s2, err := r.r.ReadByte()
	if err != nil {
		return isa.Inst{}, unexpected(err)
	}
	in.Src1, in.Src2 = int8(s1)-1, int8(s2)-1
	if in.Class.IsMem() {
		da, err := binary.ReadVarint(r.r)
		if err != nil {
			return isa.Inst{}, unexpected(err)
		}
		in.Addr = uint64(int64(r.prevAdr) + da)
		r.prevAdr = in.Addr
	}
	if head&flagTaken != 0 {
		if in.Class != isa.Branch {
			return isa.Inst{}, errors.New("trace: taken flag on non-branch")
		}
		in.Taken = true
		dt, err := binary.ReadVarint(r.r)
		if err != nil {
			return isa.Inst{}, unexpected(err)
		}
		in.Target = uint64(int64(r.prevTgt) + dt)
		r.prevTgt = in.Target
	}
	return in, nil
}

func unexpected(err error) error {
	if errors.Is(err, io.EOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}

// Read returns the next instruction with NextPC reconstructed from a
// one-record lookahead; it returns io.EOF at the end of the stream.
func (r *Reader) Read() (isa.Inst, error) {
	if r.err != nil {
		return isa.Inst{}, r.err
	}
	if r.pending == nil {
		first, err := r.readOne()
		if err != nil {
			r.err = err
			return isa.Inst{}, err
		}
		r.pending = &first
	}
	cur := *r.pending
	next, err := r.readOne()
	switch {
	case err == nil:
		r.pending = &next
		cur.NextPC = next.PC
	case errors.Is(err, io.EOF):
		r.pending = nil
		r.err = io.EOF
		if cur.Taken {
			cur.NextPC = cur.Target
		} else {
			cur.NextPC = cur.PC + 4
		}
	default:
		r.err = err
		return isa.Inst{}, err
	}
	r.read++
	return cur, nil
}

// ReadCount returns records consumed so far.
func (r *Reader) ReadCount() uint64 { return r.read }

// Source adapts the reader into an infinite pipeline source: once the trace
// is exhausted it loops from the recorded instructions held in its replay
// ring. For finite simulations shorter than the trace this never triggers.
type Source struct {
	r    *Reader
	ring []isa.Inst
	pos  int
	done bool
	// Err records the first decode error (pipeline sources cannot fail).
	Err error
}

// NewSource wraps a Reader.
func NewSource(r *Reader) *Source { return &Source{r: r} }

// Next implements the pipeline Source contract.
func (s *Source) Next() isa.Inst {
	if !s.done {
		in, err := s.r.Read()
		if err == nil {
			s.ring = append(s.ring, in)
			return in
		}
		s.done = true
		if !errors.Is(err, io.EOF) {
			s.Err = err
		}
		if len(s.ring) == 0 {
			// Degenerate trace: emit harmless no-op ALU instructions.
			s.ring = append(s.ring, isa.Inst{
				PC: 0x1000, Class: isa.IntALU, Dest: 1, Src1: 1, Src2: -1, NextPC: 0x1000,
			})
		}
	}
	in := s.ring[s.pos]
	s.pos = (s.pos + 1) % len(s.ring)
	return in
}
