package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"tvsched/internal/isa"
)

// FuzzReader feeds arbitrary bytes to the trace decoder: it must never
// panic, and must terminate with either a clean EOF or a decode error.
func FuzzReader(f *testing.F) {
	// Seed with a small valid trace.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 3)
	w.Write(isa.Inst{PC: 0x400000, Class: isa.IntALU, Dest: 1, Src1: 2, Src2: 3, NextPC: 0x400004})
	w.Write(isa.Inst{PC: 0x400004, Class: isa.Load, Dest: 4, Src1: 1, Src2: -1, Addr: 0x1000, NextPC: 0x400008})
	w.Write(isa.Inst{PC: 0x400008, Class: isa.Branch, Dest: -1, Src1: 4, Src2: -1, Taken: true, Target: 0x400000, NextPC: 0x400000})
	w.Flush()
	f.Add(buf.Bytes())
	f.Add([]byte(Magic + "\x01\x00"))
	f.Add([]byte("garbage"))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < 10000; i++ {
			_, err := r.Read()
			if err != nil {
				if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) && err.Error() == "" {
					t.Fatalf("empty error")
				}
				return
			}
		}
	})
}

// FuzzRoundTrip checks write→read identity for arbitrary instruction fields
// (coerced into validity).
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint64(0x400000), uint8(0), int8(1), int8(2), int8(3), uint64(0x1000), false, uint64(0))
	f.Add(uint64(0xffffffff00), uint8(5), int8(-1), int8(4), int8(5), uint64(0x2000), true, uint64(0x400))
	f.Fuzz(func(t *testing.T, pc uint64, classRaw uint8, dest, src1, src2 int8, addr uint64, taken bool, target uint64) {
		in := isa.Inst{
			PC:    pc,
			Class: isa.Class(classRaw % uint8(isa.NumClasses)),
			Src1:  clampReg(src1),
			Src2:  clampReg(src2),
		}
		if in.Class.HasDest() {
			d := clampReg(dest)
			if d < 0 {
				d = 1
			}
			in.Dest = d
		} else {
			in.Dest = -1
		}
		if in.Class.IsMem() {
			in.Addr = addr | 1 // non-zero
		}
		if in.Class == isa.Branch {
			in.Taken = taken
			if taken {
				in.Target = target
			}
		}
		if err := in.Validate(); err != nil {
			t.Skip()
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf, 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Write(in); err != nil {
			t.Fatal(err)
		}
		w.Flush()
		r, err := NewReader(&buf)
		if err != nil {
			t.Fatal(err)
		}
		out, err := r.Read()
		if err != nil {
			t.Fatal(err)
		}
		in.NextPC, out.NextPC = 0, 0 // reconstructed field
		if in != out {
			t.Fatalf("round trip: %+v -> %+v", in, out)
		}
	})
}

func clampReg(r int8) int8 {
	if r < 0 {
		return -1
	}
	return r % isa.NumArchRegs
}
