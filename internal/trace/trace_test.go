package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"tvsched/internal/isa"
	"tvsched/internal/workload"
)

func genTrace(t *testing.T, n int) []isa.Inst {
	t.Helper()
	prof, ok := workload.ByName("gcc")
	if !ok {
		t.Fatal("profile missing")
	}
	g, err := workload.NewGenerator(prof, 5)
	if err != nil {
		t.Fatal(err)
	}
	return g.Trace(n)
}

func roundTrip(t *testing.T, insts []isa.Inst) []isa.Inst {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, uint64(len(insts)))
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range insts {
		if err := w.Write(in); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.DeclaredCount() != uint64(len(insts)) {
		t.Fatalf("declared count %d", r.DeclaredCount())
	}
	var out []isa.Inst
	for {
		in, err := r.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, in)
	}
	return out
}

func TestRoundTripWorkload(t *testing.T) {
	insts := genTrace(t, 20000)
	out := roundTrip(t, insts)
	if len(out) != len(insts) {
		t.Fatalf("length %d, want %d", len(out), len(insts))
	}
	for i := range insts {
		// NextPC of the very last record is reconstructed heuristically.
		want := insts[i]
		got := out[i]
		if i == len(insts)-1 {
			want.NextPC, got.NextPC = 0, 0
		}
		if want != got {
			t.Fatalf("record %d mismatch:\nwant %+v\ngot  %+v", i, want, got)
		}
	}
}

func TestCompactness(t *testing.T) {
	insts := genTrace(t, 20000)
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, uint64(len(insts)))
	for _, in := range insts {
		if err := w.Write(in); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()
	perInst := float64(buf.Len()) / float64(len(insts))
	// Delta encoding should keep typical records small.
	if perInst > 8 {
		t.Fatalf("%.1f bytes/instruction, expected compact encoding", perInst)
	}
}

func TestWriterRejectsInvalid(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 0)
	bad := isa.Inst{PC: 4, Class: isa.Load, Dest: 3, Src1: 1, Src2: -1} // zero addr
	if err := w.Write(bad); err == nil {
		t.Fatal("invalid instruction accepted")
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("NOPE0000"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := NewReader(bytes.NewReader([]byte("TV"))); err == nil {
		t.Fatal("short header accepted")
	}
	// Valid header, bad version.
	hdr := append([]byte(Magic), 99, 0)
	if _, err := NewReader(bytes.NewReader(hdr)); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestTruncatedStream(t *testing.T) {
	insts := genTrace(t, 100)
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, uint64(len(insts)))
	for _, in := range insts {
		w.Write(in)
	}
	w.Flush()
	// Chop mid-record.
	data := buf.Bytes()[:buf.Len()-3]
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var lastErr error
	for {
		_, err := r.Read()
		if err != nil {
			lastErr = err
			break
		}
	}
	if errors.Is(lastErr, io.EOF) {
		t.Fatal("truncation reported as clean EOF")
	}
}

func TestSourceLoops(t *testing.T) {
	insts := genTrace(t, 50)
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, uint64(len(insts)))
	for _, in := range insts {
		w.Write(in)
	}
	w.Flush()
	r, _ := NewReader(&buf)
	src := NewSource(r)
	// Pull more instructions than the trace holds: the source must loop,
	// not fail — pipeline sources are infinite.
	for i := 0; i < 500; i++ {
		in := src.Next()
		if in.PC == 0 {
			t.Fatal("zero PC from source")
		}
	}
	if src.Err != nil {
		t.Fatalf("source error: %v", src.Err)
	}
}

func TestSourceEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 0)
	w.Flush()
	r, _ := NewReader(&buf)
	src := NewSource(r)
	for i := 0; i < 10; i++ {
		in := src.Next()
		if err := in.Validate(); err != nil {
			t.Fatalf("filler instruction invalid: %v", err)
		}
	}
}

func TestNextPCChainPreserved(t *testing.T) {
	insts := genTrace(t, 5000)
	out := roundTrip(t, insts)
	for i := 0; i < len(out)-1; i++ {
		if out[i].NextPC != out[i+1].PC {
			t.Fatalf("NextPC chain broken at %d", i)
		}
	}
}

func BenchmarkWrite(b *testing.B) {
	prof, _ := workload.ByName("gcc")
	g, _ := workload.NewGenerator(prof, 1)
	insts := g.Trace(4096)
	b.ResetTimer()
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 0)
	for i := 0; i < b.N; i++ {
		if err := w.Write(insts[i%len(insts)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRead(b *testing.B) {
	prof, _ := workload.ByName("gcc")
	g, _ := workload.NewGenerator(prof, 1)
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 0)
	for _, in := range g.Trace(100000) {
		w.Write(in)
	}
	w.Flush()
	data := buf.Bytes()
	b.ResetTimer()
	var r *Reader
	for i := 0; i < b.N; i++ {
		if r == nil || r.err != nil {
			r, _ = NewReader(bytes.NewReader(data))
		}
		if _, err := r.Read(); err != nil {
			r = nil
		}
	}
}
