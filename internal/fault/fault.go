// Package fault implements the timing-violation model of §4.3. The paper
// embeds gate-delay information from a SPICE-characterized statistical timing
// tool into the architectural simulation; we reproduce the same decision
// structure analytically:
//
//   - Every static instruction sensitizes, per pipe stage, a particular set
//     of logic paths. The 95%-confidence stage delay (µ+2σ over process
//     variation) for that PC/stage pair is a stable property of the
//     instruction — this is the path-sensitization locality of §S1 that makes
//     PC-indexed prediction work. We derive a per-(PC,stage) "margin": the
//     ratio of that delay to the cycle time at the nominal 1.10 V supply.
//   - Supply voltage scales all delays by the alpha-power law
//     D(V) ∝ V/(V−Vth)^α. The baseline is fault-free at 1.10 V; at 1.04 V
//     a small tail of instructions' sensitized paths exceed the cycle time
//     (the paper's "low fault rate" environment), and at 0.97 V a larger
//     tail does ("high fault rate").
//   - A violation occurs when margin × voltageScale × thermal × (1+jitter)
//     exceeds 1.0, i.e. when µ+2σ of the sensitized delay exceeds Tclk.
//     The per-instance jitter models operand-dependent variation in the
//     sensitized path (the ~10% of gates outside the common core φ measured
//     in §S1), so borderline PCs violate on most-but-not-all instances and
//     the TEP sees occasional mispredictions.
//
// Violations are concentrated in the CAM-heavy issue wakeup/select and
// memory (LSQ search) stages, per §3.3.1/§3.3.4 and Sartori & Kumar [16].
package fault

import (
	"math"

	"tvsched/internal/isa"
	"tvsched/internal/rng"
)

// Supply voltages of the paper's three environments (§4.3).
const (
	VNominal   = 1.10 // fault-free baseline
	VLowFault  = 1.04 // "low fault rate" environment
	VHighFault = 0.97 // "high fault rate" environment
)

// Alpha-power-law parameters (Sakurai–Newton), 45nm-class.
const (
	vth   = 0.35
	alpha = 1.3
)

// DelayScale returns the gate-delay multiplier of supply voltage v relative
// to the nominal 1.10 V supply: D(v)/D(1.10).
func DelayScale(v float64) float64 {
	d := func(v float64) float64 { return v / math.Pow(v-vth, alpha) }
	return d(v) / d(VNominal)
}

// Config parameterizes the fault model.
type Config struct {
	// Seed drives all deterministic derivations.
	Seed uint64
	// TailFraction is the fraction of (PC, stage) pairs — for the most
	// fault-prone stage — whose sensitized paths fall in the near-critical
	// tail. Per-benchmark susceptibility multiplies this (Bias).
	TailFraction float64
	// Bias is the per-benchmark susceptibility multiplier (≈1.0–2.0);
	// benchmarks with high inherent ILP exercise deeper CAM matches and show
	// higher fault rates (paper §5.1, sjeng vs libquantum).
	Bias float64
	// Jitter is the 1σ per-dynamic-instance multiplicative delay variation
	// modeling operand-dependent path differences. Around 0.5–1% reproduces
	// the ~87–92% common-path fraction of §S1.
	Jitter float64
}

// DefaultConfig returns the calibration used for the paper reproduction.
func DefaultConfig(seed uint64) Config {
	return Config{Seed: seed, TailFraction: 0.055, Bias: 1.0, Jitter: 0.002}
}

// Margin tail shape: near-critical margins are uniform in [tailLo, tailHi]
// at nominal voltage. With DelayScale(1.04)≈1.054 and DelayScale(0.97)≈1.13,
// thresholds are 1/1.054≈0.949 and 1/1.13≈0.885: the sub-ranges determine
// the two environments' fault rates. tailHi stays below 1.0 so the 1.10 V
// baseline is exactly fault-free.
const (
	tailLo = 0.860
	tailHi = 0.968
)

// stageWeight is the share of near-critical sensitized paths per pipe stage.
// Nearly all violations land in issue wakeup/select; the LSQ CAM in the
// memory stage takes most of the rest (§3.3).
func stageWeight(s isa.Stage) float64 {
	switch s {
	case isa.Issue:
		return 1.00
	case isa.Memory:
		return 0.055
	case isa.RegRead:
		return 0.012
	case isa.Execute:
		return 0.018
	case isa.Writeback:
		return 0.008
	case isa.Rename, isa.Dispatch, isa.Retire:
		return 0.003 // in-order engine: rare (§2.2)
	case isa.Fetch, isa.Decode:
		return 0.001 // thermally stable, violations very rare [17]
	default:
		return 0
	}
}

// Model derives per-(PC,stage) margins and evaluates violations.
type Model struct {
	cfg Config
}

// New builds a fault model.
func New(cfg Config) *Model { return &Model{cfg: cfg} }

// Config returns the model configuration.
func (m *Model) Config() Config { return m.cfg }

// hash01 returns a stable uniform value in [0,1) for a composite key.
func (m *Model) hash01(pc uint64, stage isa.Stage, salt uint64) float64 {
	h := rng.Mix(m.cfg.Seed ^ rng.Mix(pc) ^ rng.Mix(uint64(stage)+0x1000*salt))
	return float64(h>>11) / (1 << 53)
}

// Margin returns the (µ+2σ)/Tclk ratio of the paths instruction pc
// sensitizes in stage, at the nominal 1.10 V supply. Most pairs sit far from
// critical; a stage-weighted tail sits near critical.
func (m *Model) Margin(pc uint64, stage isa.Stage) float64 {
	return m.marginAt(pc, stage, 1)
}

// marginAt is Margin with the tail-membership probability scaled by
// tailScale — the violation-storm hook: a transient TailFraction inflation
// (see Env.TailScale) pulls additional PCs into the near-critical tail
// without moving the margins of PCs already there, so storms superimpose on
// (never reshuffle) the stationary fault population. tailScale == 1 is
// bit-identical to the unperturbed model.
func (m *Model) marginAt(pc uint64, stage isa.Stage, tailScale float64) float64 {
	pTail := m.cfg.TailFraction * m.cfg.Bias * stageWeight(stage) * tailScale
	u := m.hash01(pc, stage, 0)
	if u < pTail {
		// Near-critical tail: position within [tailLo, tailHi] from an
		// independent hash so tail membership and severity are uncorrelated.
		v := m.hash01(pc, stage, 1)
		return tailLo + v*(tailHi-tailLo)
	}
	// Comfortable paths: 0.45–0.80 of the cycle.
	return 0.45 + 0.35*m.hash01(pc, stage, 2)
}

// Violates reports whether the dynamic instance (identified by seq) of
// instruction pc incurs a timing violation in stage under environment env.
// The decision applies the paper's µ+2σ criterion with the instance's
// operand-dependent jitter.
func (m *Model) Violates(pc uint64, stage isa.Stage, env *Env, seq uint64) bool {
	margin := m.marginAt(pc, stage, env.TailScale())
	if margin < 0.82 {
		return false // fast path: far from critical at any studied voltage
	}
	jitterU := rng.Mix(m.cfg.Seed ^ rng.Mix(pc^0xfeed) ^ rng.Mix(seq) ^ uint64(stage))
	// Cheap deterministic approximation of a Gaussian: sum of 4 uniforms,
	// clamped to ±2σ. The clamp, together with tailHi < 1, guarantees the
	// 1.10 V baseline is exactly fault-free, matching §4.3.
	g := (unif(jitterU) + unif(jitterU^0xa5a5) + unif(jitterU^0x5a5a) + unif(jitterU^0xffff) - 2) * math.Sqrt(3)
	if g > 2 {
		g = 2
	} else if g < -2 {
		g = -2
	}
	inst := 1 + m.cfg.Jitter*g
	return margin*env.DelayScale()*inst > 1.0
}

func unif(h uint64) float64 { return float64(rng.Mix(h)>>11) / (1 << 53) }

// Prone reports whether pc is fault-prone in any stage at supply v (ignoring
// jitter), and the most critical such stage. The workload and tests use this
// to reason about expected fault populations.
func (m *Model) Prone(pc uint64, v float64) (isa.Stage, bool) {
	scale := DelayScale(v)
	best, bestMargin := isa.NumStages, 0.0
	for s := isa.Fetch; s < isa.NumStages; s++ {
		if mg := m.Margin(pc, s); mg*scale > 1.0 && mg > bestMargin {
			best, bestMargin = s, mg
		}
	}
	return best, best != isa.NumStages
}

// SensorOverride is a hazard's view of the TEP's thermal/voltage sensors
// (§2.1.1). The zero value leaves the sensors healthy.
type SensorOverride uint8

const (
	// SensorAuto: sensors report truthfully (Favorable follows the supply).
	SensorAuto SensorOverride = iota
	// SensorStuckOff: the sensor is stuck reporting benign conditions, so
	// the TEP suppresses every prediction — violations silently escape to
	// replay recovery.
	SensorStuckOff
	// SensorStuckOn: the sensor is stuck reporting hazardous conditions, so
	// the TEP predicts even at the fault-free nominal supply — stale entries
	// fire as false positives.
	SensorStuckOn
)

// Perturbation is the per-cycle operating-condition delta a Hazard layers
// onto the environment. Delay and TailScale are multipliers (1 = neutral,
// must be > 0); Sensor overrides the TEP sensor gating.
type Perturbation struct {
	// Delay multiplies the combined delay scale (voltage droops, thermal
	// steps, aging drift all stretch gate delays).
	Delay float64
	// TailScale multiplies the fault model's TailFraction (violation storm:
	// additional near-critical paths appear transiently).
	TailScale float64
	// Sensor overrides the TEP sensor reading.
	Sensor SensorOverride
}

// Neutral is the identity perturbation.
func Neutral() Perturbation { return Perturbation{Delay: 1, TailScale: 1} }

// Hazard supplies the perturbation for each cycle. internal/hazard.Timeline
// is the production implementation; tests inject fixed functions. At must be
// deterministic in cycle — the environment consults it exactly once per
// Step, with a strictly increasing cycle.
type Hazard interface {
	At(cycle uint64) Perturbation
}

// HazardFunc adapts a function to the Hazard interface.
type HazardFunc func(cycle uint64) Perturbation

// At implements Hazard.
func (f HazardFunc) At(cycle uint64) Perturbation { return f(cycle) }

// ReplayScaleLimit is the delay scale beyond which Razor-style replay stops
// being a reliable recovery: re-execution happens at speed through the same
// logic, so when the combined (voltage × thermal × hazard) stretch leaves no
// margin even for the retry, the replayed computation fails again and the
// recovery loops. Predicted-violation padding is immune — it pre-allocates a
// whole extra cycle, doubling the timing window (§2.2). The limit sits well
// above anything the stationary environments produce (≤ ~1.14 at 0.97 V), so
// it only engages under injected hazards.
const ReplayScaleLimit = 1.5

// Env models the runtime operating conditions: supply voltage plus a slowly
// wandering thermal factor, and optionally a Hazard timeline layering
// transient perturbations (droops, storms, sensor faults) on top. It also
// backs the TEP's sensor gating (§2.1.1): Favorable reports whether
// conditions admit timing errors at all.
type Env struct {
	vdd     float64
	vScale  float64
	thermal float64
	phase   float64
	walk    float64
	src     *rng.Source

	// Hazard state: cycle counts Steps; the perturbation sampled at the
	// last Step applies until the next. All zero-cost when hazard is nil.
	hazard Hazard
	cycle  uint64
	pert   Perturbation
}

// NewEnv builds an environment at supply voltage vdd.
func NewEnv(vdd float64, seed uint64) *Env {
	return &Env{
		vdd:     vdd,
		vScale:  DelayScale(vdd),
		thermal: 1.0,
		src:     rng.New(rng.Mix(seed ^ 0x7e47)),
		pert:    Neutral(),
	}
}

// VDD returns the supply voltage.
func (e *Env) VDD() float64 { return e.vdd }

// Cycle returns the number of Steps taken so far — the clock the hazard
// timeline is evaluated against.
func (e *Env) Cycle() uint64 { return e.cycle }

// Thermal returns the current thermal delay factor (1 ± 0.4%). Exposed so
// tests can pin that voltage retargets never disturb the thermal transient.
func (e *Env) Thermal() float64 { return e.thermal }

// SetHazard attaches (or, with nil, detaches) a hazard timeline. The next
// Step samples it; detaching restores the neutral perturbation immediately.
func (e *Env) SetHazard(h Hazard) {
	e.hazard = h
	if h == nil {
		e.pert = Neutral()
	}
}

// Step advances the thermal state; call once per simulated cycle (cheap).
// Temperature wanders on two time scales: a slow periodic component
// (package-level) and a bounded random walk (local hotspots). The excursion
// is ±0.4%, enough to modulate borderline paths without moving the fault
// population wholesale.
func (e *Env) Step() {
	e.cycle++
	e.phase += 2 * math.Pi / 200000
	if e.phase > 2*math.Pi {
		e.phase -= 2 * math.Pi
	}
	e.walk += (e.src.Float64() - 0.5) * 1e-5
	if e.walk > 0.002 {
		e.walk = 0.002
	} else if e.walk < -0.002 {
		e.walk = -0.002
	}
	e.thermal = 1 + 0.002*math.Sin(e.phase) + e.walk
	if e.hazard != nil {
		e.pert = e.hazard.At(e.cycle)
	}
}

// DelayScale returns the combined delay multiplier (voltage × thermal ×
// hazard) relative to nominal conditions.
func (e *Env) DelayScale() float64 {
	if e.hazard == nil {
		return e.vScale * e.thermal
	}
	return e.vScale * e.thermal * e.pert.Delay
}

// TailScale returns the hazard's current TailFraction multiplier (1 when no
// hazard is attached or the timeline is quiet).
func (e *Env) TailScale() float64 {
	if e.hazard == nil {
		return 1
	}
	return e.pert.TailScale
}

// ReplayReliable reports whether Razor-style replay recovery succeeds under
// the current conditions: true whenever the combined delay scale stays below
// ReplayScaleLimit. Without a hazard attached it is always true — the
// stationary environments never stretch delays that far.
func (e *Env) ReplayReliable() bool {
	if e.hazard == nil {
		return true
	}
	return e.DelayScale() <= ReplayScaleLimit
}

// Favorable reports whether the thermal/voltage sensors observe conditions
// under which timing errors can occur; at the nominal 1.10 V supply the
// sensors gate TEP predictions off. A hazard sensor fault overrides the
// truthful reading in either direction.
func (e *Env) Favorable() bool {
	switch e.pert.Sensor {
	case SensorStuckOff:
		return false
	case SensorStuckOn:
		return true
	}
	return e.vdd < VNominal-1e-9
}

// SetVDD retargets the environment to a new supply voltage, for closed-loop
// DVFS studies: delay scaling and sensor gating follow immediately; the
// thermal state is preserved.
func (e *Env) SetVDD(v float64) {
	e.vdd = v
	e.vScale = DelayScale(v)
}
