package fault

import (
	"errors"
	"testing"

	"tvsched/internal/snap"
)

// TestEnvSnapshotRoundTrip steps an environment, snapshots it, restores into
// a fresh one retargeted at a different voltage, and requires the thermal
// trajectories to track exactly.
func TestEnvSnapshotRoundTrip(t *testing.T) {
	e := NewEnv(VNominal, 7)
	for i := 0; i < 5000; i++ {
		e.Step()
	}
	var w snap.Writer
	if err := e.AppendState(&w); err != nil {
		t.Fatal(err)
	}

	e2 := NewEnv(VHighFault, 99) // wrong seed and voltage, all overwritten
	if err := e2.ReadState(snap.NewReader(w.B)); err != nil {
		t.Fatal(err)
	}
	if e2.VDD() != VNominal || e2.Cycle() != e.Cycle() {
		t.Fatalf("identity not restored: vdd=%v cycle=%d", e2.VDD(), e2.Cycle())
	}
	// Retarget both to the same faulty supply, as a restore-then-run does.
	e.SetVDD(VHighFault)
	e2.SetVDD(VHighFault)
	for i := 0; i < 5000; i++ {
		e.Step()
		e2.Step()
		if e.Thermal() != e2.Thermal() || e.DelayScale() != e2.DelayScale() {
			t.Fatalf("trajectories diverged at step %d", i)
		}
	}
}

func TestEnvSnapshotRefusesHazard(t *testing.T) {
	e := NewEnv(VNominal, 1)
	e.SetHazard(HazardFunc(func(uint64) Perturbation { return Neutral() }))
	var w snap.Writer
	if err := e.AppendState(&w); !errors.Is(err, ErrHazardSnapshot) {
		t.Fatalf("hazard snapshot accepted: %v", err)
	}
	e2 := NewEnv(VNominal, 1)
	e2.SetHazard(HazardFunc(func(uint64) Perturbation { return Neutral() }))
	if err := e2.ReadState(snap.NewReader(nil)); !errors.Is(err, ErrHazardSnapshot) {
		t.Fatalf("hazard restore accepted: %v", err)
	}
}

func TestEnvSnapshotTruncated(t *testing.T) {
	e := NewEnv(VNominal, 1)
	if err := e.ReadState(snap.NewReader([]byte{1})); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
}
