package fault

import (
	"errors"

	"tvsched/internal/rng"
	"tvsched/internal/snap"
)

// ErrHazardSnapshot is returned when snapshotting an environment with a
// hazard timeline attached: timelines are arbitrary interfaces and cannot be
// serialized, and warm checkpoints are only taken in stationary conditions
// anyway (DESIGN.md §13).
var ErrHazardSnapshot = errors.New("fault: cannot snapshot an environment with a hazard attached")

// AppendState serializes the environment's dynamic state: thermal transient,
// RNG stream and cycle count. The supply voltage is included for the reader
// to overwrite via SetVDD — restore deliberately rebinds the checkpoint to
// the restoring machine's target voltage, which is what lets one warm
// snapshot serve every (scheme, VDD) sweep cell.
func (e *Env) AppendState(w *snap.Writer) error {
	if e.hazard != nil {
		return ErrHazardSnapshot
	}
	w.F64(e.vdd)
	w.F64(e.thermal)
	w.F64(e.phase)
	w.F64(e.walk)
	w.U64(e.cycle)
	e.src.AppendState(w)
	return nil
}

// ReadState restores state written by AppendState. The receiver's hazard
// must be nil (mirroring the writer-side refusal); the perturbation resets
// to neutral and the voltage-derived scale is recomputed from the restored
// vdd — callers retarget with SetVDD afterwards.
func (e *Env) ReadState(r *snap.Reader) error {
	if e.hazard != nil {
		return ErrHazardSnapshot
	}
	e.vdd = r.F64()
	e.thermal = r.F64()
	e.phase = r.F64()
	e.walk = r.F64()
	e.cycle = r.U64()
	if e.src == nil {
		e.src = &rng.Source{}
	}
	if err := e.src.ReadState(r); err != nil {
		return err
	}
	e.vScale = DelayScale(e.vdd)
	e.pert = Neutral()
	return r.Err()
}
