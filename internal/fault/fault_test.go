package fault

import (
	"math"
	"testing"
	"testing/quick"

	"tvsched/internal/isa"
)

func TestDelayScaleMonotone(t *testing.T) {
	if DelayScale(VNominal) != 1.0 {
		t.Fatalf("DelayScale(nominal) = %v", DelayScale(VNominal))
	}
	low := DelayScale(VLowFault)
	high := DelayScale(VHighFault)
	if !(high > low && low > 1.0) {
		t.Fatalf("scaling not monotone: low=%v high=%v", low, high)
	}
	// Sanity band: ~5% and ~13% stretch.
	if low < 1.03 || low > 1.08 {
		t.Fatalf("low-voltage stretch %v outside expected band", low)
	}
	if high < 1.10 || high > 1.18 {
		t.Fatalf("high-fault stretch %v outside expected band", high)
	}
}

func TestNominalVoltageFaultFree(t *testing.T) {
	m := New(DefaultConfig(1))
	env := NewEnv(VNominal, 1)
	for pc := uint64(0); pc < 40000; pc += 4 {
		for s := isa.Issue; s <= isa.Writeback; s++ {
			if m.Violates(pc, s, env, pc) {
				t.Fatalf("violation at nominal voltage: pc=%#x stage=%v", pc, s)
			}
		}
	}
}

// countRate estimates the per-instruction violation rate over the OoO engine
// for a uniform PC population.
func countRate(m *Model, v float64, n int) float64 {
	env := NewEnv(v, 2)
	faults := 0
	for i := 0; i < n; i++ {
		pc := uint64(i) * 4
		hit := false
		for s := isa.Issue; s <= isa.Writeback; s++ {
			if m.Violates(pc, s, env, uint64(i)) {
				hit = true
				break
			}
		}
		if hit {
			faults++
		}
	}
	return float64(faults) / float64(n)
}

func TestFaultRateBands(t *testing.T) {
	m := New(DefaultConfig(7))
	low := countRate(m, VLowFault, 50000)
	high := countRate(m, VHighFault, 50000)
	// Paper Table 1: 1.4–2.3% at 1.04V, 5.6–10.5% at 0.97V (per committed
	// instruction, dynamic). Uniform static PCs should land in/near those
	// bands with Bias=1.
	if low < 0.008 || low > 0.035 {
		t.Fatalf("low-voltage fault rate %v outside band", low)
	}
	if high < 0.04 || high > 0.13 {
		t.Fatalf("high-fault-rate %v outside band", high)
	}
	if high <= low {
		t.Fatalf("fault rate must grow as voltage drops: %v vs %v", low, high)
	}
}

func TestBiasScalesRate(t *testing.T) {
	c1 := DefaultConfig(3)
	c2 := DefaultConfig(3)
	c2.Bias = 2.0
	r1 := countRate(New(c1), VHighFault, 30000)
	r2 := countRate(New(c2), VHighFault, 30000)
	if r2 < r1*1.5 {
		t.Fatalf("Bias=2 rate %v not ~2x of %v", r2, r1)
	}
}

func TestIssueStageDominates(t *testing.T) {
	m := New(DefaultConfig(11))
	counts := map[isa.Stage]int{}
	for i := 0; i < 60000; i++ {
		pc := uint64(i) * 4
		if s, ok := m.Prone(pc, VHighFault); ok {
			counts[s]++
		}
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		t.Fatal("no fault-prone PCs found")
	}
	if frac := float64(counts[isa.Issue]) / float64(total); frac < 0.6 {
		t.Fatalf("issue stage share %v; paper: almost all violations in wakeup/select", frac)
	}
	if counts[isa.Memory] == 0 {
		t.Fatal("memory stage should see some violations (LSQ CAM)")
	}
}

func TestPerPCRepeatability(t *testing.T) {
	// The core premise of the paper (§S1): dynamic instances of the same
	// static PC behave alike. For fault-prone PCs, the overwhelming majority
	// of instances must violate; for safe PCs, none (jitter is small).
	m := New(DefaultConfig(13))
	env := NewEnv(VHighFault, 13)
	checked := 0
	for pc := uint64(0); pc < 400000 && checked < 30; pc += 4 {
		if s, ok := m.Prone(pc, VHighFault); ok && m.Margin(pc, s) > 0.92 {
			viol := 0
			for seq := uint64(0); seq < 1000; seq++ {
				if m.Violates(pc, s, env, seq) {
					viol++
				}
			}
			if viol < 800 {
				t.Fatalf("fault-prone pc %#x violated only %d/1000 instances", pc, viol)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("found no strongly fault-prone PCs to check")
	}
}

func TestMarginDeterministic(t *testing.T) {
	m1 := New(DefaultConfig(21))
	m2 := New(DefaultConfig(21))
	for pc := uint64(0); pc < 1000; pc += 4 {
		if m1.Margin(pc, isa.Issue) != m2.Margin(pc, isa.Issue) {
			t.Fatal("Margin not deterministic")
		}
	}
}

func TestMarginSeedSensitivity(t *testing.T) {
	m1 := New(DefaultConfig(1))
	m2 := New(DefaultConfig(2))
	same := 0
	for pc := uint64(0); pc < 1000; pc += 4 {
		if m1.Margin(pc, isa.Issue) == m2.Margin(pc, isa.Issue) {
			same++
		}
	}
	if same > 10 {
		t.Fatalf("margins independent of seed (%d/250 identical)", same)
	}
}

func TestEnvThermalBounded(t *testing.T) {
	env := NewEnv(VLowFault, 5)
	base := DelayScale(VLowFault)
	for i := 0; i < 500000; i++ {
		env.Step()
		r := env.DelayScale() / base
		if r < 0.99 || r > 1.01 {
			t.Fatalf("thermal factor escaped bounds: %v", r)
		}
	}
}

func TestFavorable(t *testing.T) {
	if NewEnv(VNominal, 1).Favorable() {
		t.Fatal("nominal voltage must be unfavorable for faults")
	}
	if !NewEnv(VLowFault, 1).Favorable() {
		t.Fatal("1.04V must be favorable")
	}
	if !NewEnv(VHighFault, 1).Favorable() {
		t.Fatal("0.97V must be favorable")
	}
}

func TestProneConsistentWithMargin(t *testing.T) {
	m := New(DefaultConfig(17))
	scale := DelayScale(VHighFault)
	for pc := uint64(0); pc < 20000; pc += 4 {
		s, ok := m.Prone(pc, VHighFault)
		anyOver := false
		for st := isa.Fetch; st < isa.NumStages; st++ {
			if m.Margin(pc, st)*scale > 1 {
				anyOver = true
			}
		}
		if ok != anyOver {
			t.Fatalf("Prone(%#x) = %v inconsistent with margins", pc, ok)
		}
		if ok && m.Margin(pc, s)*scale <= 1 {
			t.Fatalf("Prone returned non-violating stage for %#x", pc)
		}
	}
}

// Property: margins are always in (0, 1): the nominal environment never
// violates by construction.
func TestMarginRangeProperty(t *testing.T) {
	m := New(DefaultConfig(31))
	f := func(pc uint64, sRaw uint8) bool {
		s := isa.Stage(sRaw % uint8(isa.NumStages))
		mg := m.Margin(pc, s)
		return mg > 0 && mg < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Violates is deterministic in all of its inputs.
func TestViolatesDeterministicProperty(t *testing.T) {
	m := New(DefaultConfig(37))
	envA := NewEnv(VHighFault, 1)
	envB := NewEnv(VHighFault, 1)
	f := func(pc, seq uint64) bool {
		return m.Violates(pc, isa.Issue, envA, seq) == m.Violates(pc, isa.Issue, envB, seq)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDelayScaleSmooth(t *testing.T) {
	// No kinks: monotone decreasing in V over the studied interval.
	prev := math.Inf(1)
	for v := 0.95; v <= 1.12; v += 0.005 {
		s := DelayScale(v)
		if s >= prev {
			t.Fatalf("DelayScale not strictly decreasing at V=%v", v)
		}
		prev = s
	}
}

func BenchmarkViolates(b *testing.B) {
	m := New(DefaultConfig(1))
	env := NewEnv(VHighFault, 1)
	for i := 0; i < b.N; i++ {
		m.Violates(uint64(i)*4, isa.Issue, env, uint64(i))
	}
}

func TestEnvSetVDD(t *testing.T) {
	env := NewEnv(VNominal, 1)
	if env.Favorable() {
		t.Fatal("nominal should be unfavorable")
	}
	env.SetVDD(VHighFault)
	if env.VDD() != VHighFault || !env.Favorable() {
		t.Fatal("SetVDD did not retarget")
	}
	want := DelayScale(VHighFault)
	got := env.DelayScale()
	if got < want*0.99 || got > want*1.01 {
		t.Fatalf("delay scale %v after SetVDD, want ~%v", got, want)
	}
}

// TestSetVDDPreservesThermalTransient pins the supervisor's contract with the
// environment: retargeting the supply mid-run (the VDD-boost rung, DVFS
// steps) must not reset, reseed or skew the deterministic thermal transient
// or the hazard clock. Two environments stepped in lockstep — one retargeted
// twice mid-run — must report identical Thermal() and Cycle() sequences, and
// the retargeted one must return to bit-identical DelayScale() once its
// supply is restored.
func TestSetVDDPreservesThermalTransient(t *testing.T) {
	hz := HazardFunc(func(cycle uint64) Perturbation {
		p := Neutral()
		if cycle >= 2000 && cycle < 6000 {
			p.Delay = 1.25
		}
		return p
	})
	ref := NewEnv(VHighFault, 42)
	tgt := NewEnv(VHighFault, 42)
	ref.SetHazard(hz)
	tgt.SetHazard(hz)

	for c := 0; c < 10000; c++ {
		switch c {
		case 3000:
			tgt.SetVDD(VNominal) // boost mid-hazard
		case 7000:
			tgt.SetVDD(VHighFault) // restore
		}
		ref.Step()
		tgt.Step()
		if ref.Thermal() != tgt.Thermal() {
			t.Fatalf("cycle %d: SetVDD skewed the thermal transient: %v vs %v",
				c, ref.Thermal(), tgt.Thermal())
		}
		if ref.Cycle() != tgt.Cycle() {
			t.Fatalf("cycle %d: SetVDD skewed the hazard clock: %d vs %d",
				c, ref.Cycle(), tgt.Cycle())
		}
		if c >= 7000 && ref.DelayScale() != tgt.DelayScale() {
			t.Fatalf("cycle %d: delay scale did not return bit-identical after restore: %v vs %v",
				c, ref.DelayScale(), tgt.DelayScale())
		}
	}
}
