package tep

import (
	"testing"

	"tvsched/internal/isa"
	"tvsched/internal/rng"
)

func TestPerceptronLearnsAlwaysFaulty(t *testing.T) {
	p := NewPerceptron(DefaultPerceptronConfig())
	pc := uint64(0x400)
	for i := 0; i < 20; i++ {
		p.Train(pc, uint64(i), true, isa.Issue)
	}
	pr := p.Lookup(pc, 21, true)
	if !pr.Fault || pr.Stage != isa.Issue {
		t.Fatalf("always-faulty PC not learned: %+v", pr)
	}
}

func TestPerceptronLearnsNeverFaulty(t *testing.T) {
	p := NewPerceptron(DefaultPerceptronConfig())
	pc := uint64(0x800)
	for i := 0; i < 20; i++ {
		p.Train(pc, uint64(i), false, 0)
	}
	if p.Lookup(pc, 5, true).Fault {
		t.Fatal("never-faulty PC predicted faulty")
	}
}

func TestPerceptronLearnsHistoryCorrelation(t *testing.T) {
	// Fault iff history bit 2 is set — linearly separable, so the
	// perceptron must learn it while a 2-bit counter can only flap.
	p := NewPerceptron(DefaultPerceptronConfig())
	pc := uint64(0x1000)
	src := rng.New(4)
	for i := 0; i < 400; i++ {
		h := src.Uint64() & 0xff
		p.Train(pc, h, h&(1<<2) != 0, isa.Issue)
	}
	correct := 0
	for i := 0; i < 200; i++ {
		h := src.Uint64() & 0xff
		want := h&(1<<2) != 0
		if p.Lookup(pc, h, true).Fault == want {
			correct++
		}
	}
	if correct < 190 {
		t.Fatalf("history-correlated pattern only %d/200 correct", correct)
	}
}

func TestPerceptronSensorGating(t *testing.T) {
	p := NewPerceptron(DefaultPerceptronConfig())
	pc := uint64(0x40)
	for i := 0; i < 10; i++ {
		p.Train(pc, 0, true, isa.Memory)
	}
	if p.Lookup(pc, 0, false).Fault {
		t.Fatal("unfavorable conditions must gate prediction")
	}
}

func TestPerceptronCriticality(t *testing.T) {
	p := NewPerceptron(DefaultPerceptronConfig())
	p.SetCritical(0x40, 0, true)
	if !p.Lookup(0x40, 0, true).Critical {
		t.Fatal("criticality lost")
	}
}

func TestPerceptronWeightsSaturate(t *testing.T) {
	p := NewPerceptron(PerceptronConfig{Rows: 16, HistoryBits: 4, Theta: 1000000})
	// Theta huge => always trains; weights must clamp, not wrap.
	for i := 0; i < 1000; i++ {
		p.Train(0x40, 0xf, true, isa.Issue)
	}
	r := p.row(0x40)
	if p.bias[r] != 127 {
		t.Fatalf("bias %d, want saturated 127", p.bias[r])
	}
	for _, w := range p.weights[r] {
		if w != 127 {
			t.Fatalf("weight %d not saturated", w)
		}
	}
}

func TestPerceptronBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad Rows accepted")
		}
	}()
	NewPerceptron(PerceptronConfig{Rows: 3})
}

func TestPerceptronStorage(t *testing.T) {
	p := NewPerceptron(PerceptronConfig{Rows: 64, HistoryBits: 8, Theta: 20})
	if got := p.StorageBits(); got != 64*(8*9+5) {
		t.Fatalf("storage %d", got)
	}
}

// comparePredictors measures coverage (fraction of faults predicted) and
// false-positive rate over a synthetic PC/fault stream with partially
// history-correlated faults.
func comparePredictors(t *testing.T, mk func() Predictor) (coverage, fpRate float64) {
	t.Helper()
	p := mk()
	src := rng.New(11)
	// Branch history in a real front end is loop-repetitive: each hot PC is
	// reached under a handful of recurring history patterns, not uniform
	// noise. Model 4 patterns per PC.
	patterns := make([]uint64, 4)
	for i := range patterns {
		patterns[i] = src.Uint64() & 0xff
	}
	var faults, covered, cleans, fps int
	for i := 0; i < 60000; i++ {
		pc := uint64(src.Zipf(512, 0.9)) * 4
		h := (patterns[src.Intn(4)] ^ rng.Mix(pc)) & 0xff
		// Ground truth: 10% of PCs are fault-prone; half of those also
		// require a history condition.
		prone := rng.Mix(pc)%10 == 0
		histCond := rng.Mix(pc)%20 == 0
		fault := prone && (!histCond || h&1 != 0)
		pred := p.Lookup(pc, h, true).Fault
		if fault {
			faults++
			if pred {
				covered++
			}
		} else {
			cleans++
			if pred {
				fps++
			}
		}
		p.Train(pc, h, fault, isa.Issue)
	}
	return float64(covered) / float64(faults), float64(fps) / float64(cleans)
}

func TestPerceptronVsTableCoverage(t *testing.T) {
	tblCov, tblFP := comparePredictors(t, func() Predictor { return New(Config{Entries: 1024, HistoryBits: 8}) })
	perCov, perFP := comparePredictors(t, func() Predictor { return NewPerceptron(DefaultPerceptronConfig()) })
	t.Logf("table: coverage %.3f fp %.4f; perceptron: coverage %.3f fp %.4f",
		tblCov, tblFP, perCov, perFP)
	if tblCov < 0.5 || perCov < 0.5 {
		t.Fatalf("implausible coverage: table %.3f perceptron %.3f", tblCov, perCov)
	}
	// On history-correlated faults the perceptron should at least match the
	// table predictor's coverage.
	if perCov < tblCov-0.05 {
		t.Fatalf("perceptron coverage %.3f well below table %.3f", perCov, tblCov)
	}
	if tblFP > 0.2 || perFP > 0.2 {
		t.Fatalf("false-positive rates out of hand: %.3f %.3f", tblFP, perFP)
	}
}
