package tep

import (
	"fmt"

	"tvsched/internal/isa"
	"tvsched/internal/snap"
)

// AppendState serializes the learned table sparsely: only valid entries,
// each with its index, tag, counter, stage and criticality bit. Statistics
// are not serialized — snapshots are taken at the warmup boundary, where
// the pipeline zeroes them.
func (t *TEP) AppendState(w *snap.Writer) {
	w.U32(uint32(t.cfg.Entries))
	w.U32(uint32(t.cfg.HistoryBits))
	n := 0
	for i := range t.tab {
		if t.tab[i].valid {
			n++
		}
	}
	w.U32(uint32(n))
	for i := range t.tab {
		if t.tab[i].valid {
			e := &t.tab[i]
			w.U32(uint32(i))
			w.U32(uint32(e.tag))
			w.U8(e.counter)
			w.U8(uint8(e.stage))
			w.Bool(e.critical)
		}
	}
}

// ReadState restores state written by AppendState into a predictor of
// identical geometry; mismatched geometry is rejected. Statistics are
// zeroed.
func (t *TEP) ReadState(r *snap.Reader) error {
	if e, h := int(r.U32()), int(r.U32()); e != t.cfg.Entries || h != t.cfg.HistoryBits {
		return fmt.Errorf("%w: tep geometry %dx%d, have %dx%d",
			snap.ErrCorrupt, e, h, t.cfg.Entries, t.cfg.HistoryBits)
	}
	for i := range t.tab {
		t.tab[i] = entry{}
	}
	n := int(r.U32())
	if n > len(t.tab) {
		return fmt.Errorf("%w: %d valid tep entries of %d", snap.ErrCorrupt, n, len(t.tab))
	}
	for k := 0; k < n; k++ {
		i := int(r.U32())
		if i >= len(t.tab) {
			return fmt.Errorf("%w: tep index %d out of range", snap.ErrCorrupt, i)
		}
		t.tab[i] = entry{
			tag:      uint16(r.U32()),
			counter:  r.U8(),
			stage:    isa.Stage(r.U8()),
			critical: r.Bool(),
			valid:    true,
		}
	}
	t.Stats = Stats{}
	return r.Err()
}
