package tep

import "tvsched/internal/isa"

// Predictor is the interface the pipeline consumes; the table-based TEP of
// §2.1.1 is the paper's design, and Perceptron is an extension studying
// whether history-correlating weights buy coverage (the same question the
// branch-prediction literature answered for direction prediction).
type Predictor interface {
	Lookup(pc, history uint64, favorable bool) Prediction
	Train(pc, history uint64, fault bool, stage isa.Stage)
	SetCritical(pc, history uint64, critical bool)
}

// Static interface checks.
var (
	_ Predictor = (*TEP)(nil)
	_ Predictor = (*Perceptron)(nil)
)

// PerceptronConfig sizes the perceptron predictor.
type PerceptronConfig struct {
	// Rows is the number of weight vectors (power of two), indexed by PC.
	Rows int
	// HistoryBits is the number of branch-history inputs per vector.
	HistoryBits int
	// Theta is the training threshold: vectors train until the output
	// magnitude exceeds it (the classic perceptron-predictor rule;
	// 1.93*H+14 is the literature default).
	Theta int
}

// DefaultPerceptronConfig matches the TEP's storage budget order.
func DefaultPerceptronConfig() PerceptronConfig {
	h := 8
	return PerceptronConfig{Rows: 1024, HistoryBits: h, Theta: int(1.93*float64(h)) + 14}
}

// Perceptron predicts per-PC timing violations from branch history with
// signed saturating weights. Stage and criticality ride in per-row side
// fields, as in the table TEP.
type Perceptron struct {
	cfg      PerceptronConfig
	bias     []int16
	weights  [][]int16
	stage    []isa.Stage
	critical []bool
	mask     uint64
	Stats    Stats
}

// NewPerceptron builds the predictor; Rows must be a positive power of two.
func NewPerceptron(cfg PerceptronConfig) *Perceptron {
	if cfg.Rows <= 0 || cfg.Rows&(cfg.Rows-1) != 0 {
		panic("tep: Rows must be a positive power of two")
	}
	p := &Perceptron{
		cfg:      cfg,
		bias:     make([]int16, cfg.Rows),
		weights:  make([][]int16, cfg.Rows),
		stage:    make([]isa.Stage, cfg.Rows),
		critical: make([]bool, cfg.Rows),
		mask:     uint64(cfg.Rows - 1),
	}
	for i := range p.weights {
		p.weights[i] = make([]int16, cfg.HistoryBits)
	}
	return p
}

func (p *Perceptron) row(pc uint64) uint64 { return (pc >> 2) & p.mask }

// output computes the dot product of the row's weights with the history.
func (p *Perceptron) output(row uint64, history uint64) int {
	sum := int(p.bias[row])
	w := p.weights[row]
	for k := 0; k < p.cfg.HistoryBits; k++ {
		if history&(1<<k) != 0 {
			sum += int(w[k])
		} else {
			sum -= int(w[k])
		}
	}
	return sum
}

// Lookup predicts a violation when the perceptron output is positive, gated
// by the sensor conditions like the table TEP.
func (p *Perceptron) Lookup(pc, history uint64, favorable bool) Prediction {
	p.Stats.Lookups++
	r := p.row(pc)
	pred := Prediction{Critical: p.critical[r]}
	if !favorable {
		return pred
	}
	if p.output(r, history) > 0 {
		p.Stats.Predicted++
		pred.Fault = true
		pred.Stage = p.stage[r]
	}
	return pred
}

// Train applies the perceptron learning rule with threshold theta.
func (p *Perceptron) Train(pc, history uint64, fault bool, stage isa.Stage) {
	p.Stats.Trained++
	r := p.row(pc)
	out := p.output(r, history)
	predicted := out > 0
	mag := out
	if mag < 0 {
		mag = -mag
	}
	if predicted == fault && mag > p.cfg.Theta {
		return // confident and correct: leave the weights alone
	}
	dir := int16(-1)
	if fault {
		dir = 1
		p.stage[r] = stage
	}
	sat := func(v int16, d int16) int16 {
		n := v + d
		if n > 127 {
			return 127
		}
		if n < -128 {
			return -128
		}
		return n
	}
	p.bias[r] = sat(p.bias[r], dir)
	w := p.weights[r]
	for k := 0; k < p.cfg.HistoryBits; k++ {
		if history&(1<<k) != 0 {
			w[k] = sat(w[k], dir)
		} else {
			w[k] = sat(w[k], -dir)
		}
	}
}

// SetCritical stores the CDL determination for pc's row.
func (p *Perceptron) SetCritical(pc, history uint64, critical bool) {
	p.critical[p.row(pc)] = critical
}

// StorageBits returns the predictor's storage cost: 8-bit weights plus bias,
// stage and criticality fields per row.
func (p *Perceptron) StorageBits() int {
	perRow := 8*(p.cfg.HistoryBits+1) + 4 + 1
	return p.cfg.Rows * perRow
}
