package tep

import (
	"testing"
	"testing/quick"

	"tvsched/internal/isa"
)

func TestColdLookupNoPrediction(t *testing.T) {
	p := New(DefaultConfig())
	if pr := p.Lookup(0x400, 0, true); pr.Fault {
		t.Fatal("cold table predicted a fault")
	}
}

func TestLearnsFaultAfterOneObservation(t *testing.T) {
	p := New(DefaultConfig())
	pc := uint64(0x400)
	p.Train(pc, 0, true, isa.Issue)
	pr := p.Lookup(pc, 0, true)
	if !pr.Fault {
		t.Fatal("one faulting observation should enable prediction (non-zero counter)")
	}
	if pr.Stage != isa.Issue {
		t.Fatalf("stage = %v, want issue", pr.Stage)
	}
}

func TestCounterSaturationAndDecay(t *testing.T) {
	p := New(DefaultConfig())
	pc := uint64(0x40)
	for i := 0; i < 10; i++ {
		p.Train(pc, 0, true, isa.Memory)
	}
	if c := p.Counter(pc, 0); c != 3 {
		t.Fatalf("counter %d, want saturated 3", c)
	}
	for i := 0; i < 2; i++ {
		p.Train(pc, 0, false, 0)
	}
	if c := p.Counter(pc, 0); c != 1 {
		t.Fatalf("counter %d after two decays, want 1", c)
	}
	if !p.Lookup(pc, 0, true).Fault {
		t.Fatal("non-zero counter must still predict")
	}
	p.Train(pc, 0, false, 0)
	if p.Lookup(pc, 0, true).Fault {
		t.Fatal("zero counter must not predict")
	}
	p.Train(pc, 0, false, 0) // decay at zero stays at zero
	if c := p.Counter(pc, 0); c != 0 {
		t.Fatalf("counter underflow: %d", c)
	}
}

func TestSensorGating(t *testing.T) {
	p := New(DefaultConfig())
	pc := uint64(0x80)
	p.Train(pc, 0, true, isa.Issue)
	if p.Lookup(pc, 0, false).Fault {
		t.Fatal("unfavorable sensor conditions must suppress prediction")
	}
	if !p.Lookup(pc, 0, true).Fault {
		t.Fatal("favorable conditions must predict")
	}
}

func TestNoAllocationOnCleanTrain(t *testing.T) {
	p := New(DefaultConfig())
	p.Train(0x100, 0, false, 0)
	if p.Counter(0x100, 0) != 0 {
		t.Fatal("clean training allocated an entry")
	}
}

func TestTagConflictEviction(t *testing.T) {
	cfg := Config{Entries: 16, HistoryBits: 0}
	p := New(cfg)
	// Two PCs with the same index (stride Entries*4) but different tags.
	a := uint64(0x1000)
	b := a + uint64(cfg.Entries)*4*16 // differs above index bits => tag differs
	p.Train(a, 0, true, isa.Issue)
	if !p.Lookup(a, 0, true).Fault {
		t.Fatal("a not learned")
	}
	p.Train(b, 0, true, isa.Memory)
	if got := p.Stats.TagEvicts; got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	if p.Lookup(a, 0, true).Fault {
		t.Fatal("a should have been evicted by b")
	}
	if pr := p.Lookup(b, 0, true); !pr.Fault || pr.Stage != isa.Memory {
		t.Fatalf("b prediction %+v", pr)
	}
}

func TestHistoryDisambiguatesPaths(t *testing.T) {
	p := New(Config{Entries: 1024, HistoryBits: 8})
	pc := uint64(0x2000)
	// Same PC faulty under history A, clean under history B: distinct entries.
	p.Train(pc, 0x5, true, isa.Issue)
	if !p.Lookup(pc, 0x5, true).Fault {
		t.Fatal("history-A entry not learned")
	}
	if p.Lookup(pc, 0x6, true).Fault {
		t.Fatal("history-B path should be independent")
	}
}

func TestSetCritical(t *testing.T) {
	p := New(DefaultConfig())
	pc := uint64(0x300)
	p.SetCritical(pc, 0, true) // no entry yet: no-op
	if p.Lookup(pc, 0, true).Critical {
		t.Fatal("criticality set without an entry")
	}
	p.Train(pc, 0, true, isa.Issue)
	p.SetCritical(pc, 0, true)
	pr := p.Lookup(pc, 0, true)
	if !pr.Critical {
		t.Fatal("criticality bit lost")
	}
	// Criticality survives counter decay to zero (prediction off, bit kept).
	p.Train(pc, 0, false, 0)
	pr = p.Lookup(pc, 0, true)
	if pr.Fault || !pr.Critical {
		t.Fatalf("after decay: %+v", pr)
	}
}

func TestReset(t *testing.T) {
	p := New(DefaultConfig())
	p.Train(0x10, 0, true, isa.Issue)
	p.Reset()
	if p.Lookup(0x10, 0, true).Fault || p.Stats.Lookups != 1 {
		// Lookups==1 because the post-reset Lookup counted.
		t.Fatal("reset incomplete")
	}
}

func TestStorageBits(t *testing.T) {
	p := New(Config{Entries: 1024, HistoryBits: 8})
	if got := p.StorageBits(); got != 1024*23 {
		t.Fatalf("StorageBits = %d", got)
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two Entries accepted")
		}
	}()
	New(Config{Entries: 1000})
}

// Property: Train(fault) then Lookup with the same (pc, history) always
// predicts a fault with the trained stage, for favorable conditions.
func TestTrainThenPredictProperty(t *testing.T) {
	p := New(DefaultConfig())
	f := func(pc, hist uint64, stageRaw uint8) bool {
		stage := isa.Stage(stageRaw % uint8(isa.NumStages))
		p.Train(pc, hist, true, stage)
		pr := p.Lookup(pc, hist, true)
		return pr.Fault && pr.Stage == stage
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the counter is always <= 3 (2-bit).
func TestCounterBoundedProperty(t *testing.T) {
	p := New(Config{Entries: 64, HistoryBits: 4})
	f := func(pc uint64, fault bool) bool {
		p.Train(pc&0xff, 0, fault, isa.Issue)
		return p.Counter(pc&0xff, 0) <= 3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLookupTrain(b *testing.B) {
	p := New(DefaultConfig())
	for i := 0; i < b.N; i++ {
		pc := uint64(i%4096) * 4
		p.Lookup(pc, uint64(i), true)
		p.Train(pc, uint64(i), i%37 == 0, isa.Issue)
	}
}
