package tep

import (
	"testing"

	"tvsched/internal/isa"
	"tvsched/internal/rng"
	"tvsched/internal/snap"
)

// TestSnapshotRoundTrip trains a TEP on a random fault stream, restores it
// into a fresh table, and requires identical predictions afterwards.
func TestSnapshotRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	p := New(cfg)
	src := rng.New(5)
	for i := 0; i < 20000; i++ {
		pc := uint64(0x400000 + 4*src.Intn(3000))
		hist := uint64(src.Intn(16))
		stage := isa.Stage(src.Intn(int(isa.NumStages)))
		p.Train(pc, hist, src.Bool(0.3), stage)
		if src.Bool(0.1) {
			p.SetCritical(pc, hist, src.Bool(0.5))
		}
	}

	var w snap.Writer
	p.AppendState(&w)
	p2 := New(cfg)
	if err := p2.ReadState(snap.NewReader(w.B)); err != nil {
		t.Fatal(err)
	}
	// Restore zeroes statistics (the warmup-boundary contract); zero the
	// original's too so both accumulate from the same point below.
	p.Stats = Stats{}
	for i := 0; i < 20000; i++ {
		pc := uint64(0x400000 + 4*src.Intn(3000))
		hist := uint64(src.Intn(16))
		if a, b := p.Lookup(pc, hist, true), p2.Lookup(pc, hist, true); a != b {
			t.Fatalf("lookup diverged at %d: %+v vs %+v", i, a, b)
		}
	}
	if p.Stats != p2.Stats {
		t.Fatal("post-restore statistics diverged")
	}
}

func TestSnapshotGeometryMismatch(t *testing.T) {
	p := New(DefaultConfig())
	var w snap.Writer
	p.AppendState(&w)
	other := New(Config{Entries: 256, HistoryBits: 2})
	if err := other.ReadState(snap.NewReader(w.B)); err == nil {
		t.Fatal("geometry mismatch accepted")
	}
}
