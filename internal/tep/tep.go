// Package tep implements the Timing Error Predictor of §2.1.1: a tagged
// prediction table accessed in parallel with decode. It combines features of
// the Most-Recent-Entry predictor (Xin & Joseph, MICRO'11) and the Timing
// Violation Predictor (Roy & Chakraborty, DAC'12):
//
//   - each entry carries a 2-byte tag derived from the PC;
//   - the table is indexed by a combination of PC bits and recent branch
//     outcomes (the front end's global history register);
//   - a 2-bit saturating counter tracks the violation potential — any
//     non-zero value predicts an upcoming violation;
//   - the entry records the faulty pipe stage, so the issue stage knows which
//     resource to manage (§3.2.1);
//   - the entry stores the criticality bit learned by the CDL (§3.5.2);
//   - predictions are gated by favorable thermal/voltage sensor conditions.
package tep

import (
	"tvsched/internal/isa"
	"tvsched/internal/obs"
)

// Config sizes the predictor.
type Config struct {
	// Entries is the number of table entries; must be a power of two.
	Entries int
	// HistoryBits is how many recent branch outcomes are XOR-folded into the
	// index.
	HistoryBits int
}

// DefaultConfig sizes the predictor so hot static instructions rarely alias:
// a 4K-entry table (4K × 23 bits ≈ 11.5 KB) with 4 bits of branch history
// folded into the index. More history bits discriminate more dynamic
// contexts per PC but each context must observe its first violation before
// predicting, hurting coverage; 4 bits balances the two effects (see
// BenchmarkAblationTEP).
func DefaultConfig() Config { return Config{Entries: 4096, HistoryBits: 2} }

// Prediction is the TEP output attached to an instruction's meta-data as it
// traverses the pipeline (§2.1).
type Prediction struct {
	// Fault is true when a timing violation is predicted.
	Fault bool
	// Stage is the pipe stage the violation is predicted in; only meaningful
	// when Fault is set.
	Stage isa.Stage
	// Critical is the CDL-learned criticality bit used by the CDS policy.
	Critical bool
}

// Stats counts predictor activity. Accuracy accounting (true/false
// positives) is done by the pipeline, which knows ground truth.
type Stats struct {
	Lookups   uint64
	Predicted uint64
	Trained   uint64
	TagEvicts uint64
	// Suppressed counts lookups that hit a saturated (would-predict) entry
	// but were gated off by unfavorable sensor readings. Under a healthy
	// sensor this is the paper's intended nominal-voltage gating; a burst of
	// suppressions at a faulty supply is the signature of a stuck or flaky
	// sensor silently poisoning predictions.
	Suppressed uint64
}

type entry struct {
	tag      uint16
	counter  uint8 // 2-bit saturating
	stage    isa.Stage
	critical bool
	valid    bool
}

// TEP is the timing error predictor table.
type TEP struct {
	cfg   Config
	tab   []entry
	mask  uint64
	hmask uint64
	Stats Stats
	// Obs, when non-nil, receives KindTEPPredict for every positive lookup
	// and KindTEPTrain for every fault training (the observability layer's
	// view into predictor behaviour). The pipeline wires it from its own
	// observer; the events carry no Cycle (the TEP has no clock view).
	Obs obs.Observer
}

// New builds a TEP; it panics if Entries is not a positive power of two
// (configurations are program constants).
func New(cfg Config) *TEP {
	if cfg.Entries <= 0 || cfg.Entries&(cfg.Entries-1) != 0 {
		panic("tep: Entries must be a positive power of two")
	}
	return &TEP{
		cfg:   cfg,
		tab:   make([]entry, cfg.Entries),
		mask:  uint64(cfg.Entries - 1),
		hmask: (1 << uint(cfg.HistoryBits)) - 1,
	}
}

// Config returns the predictor configuration.
func (t *TEP) Config() Config { return t.cfg }

func (t *TEP) index(pc, history uint64) uint64 {
	return ((pc >> 2) ^ (history & t.hmask)) & t.mask
}

func tagOf(pc uint64) uint16 { return uint16(pc >> 2) }

// Lookup is performed in parallel with decode. history is the front end's
// global branch history; favorable reports whether the thermal/voltage
// sensors indicate conditions under which timing errors can occur — when
// false (cool die, nominal voltage) the TEP suppresses its prediction, as the
// paper's sensor gating does.
func (t *TEP) Lookup(pc, history uint64, favorable bool) Prediction {
	t.Stats.Lookups++
	e := &t.tab[t.index(pc, history)]
	if !e.valid || e.tag != tagOf(pc) {
		return Prediction{}
	}
	if e.counter == 0 || !favorable {
		if e.counter > 0 {
			t.Stats.Suppressed++
		}
		return Prediction{Critical: e.critical}
	}
	t.Stats.Predicted++
	if t.Obs != nil {
		t.Obs.Event(obs.Event{Kind: obs.KindTEPPredict, PC: pc, Stage: e.stage})
	}
	return Prediction{Fault: true, Stage: e.stage, Critical: e.critical}
}

// Train updates the entry for pc after the instruction's actual behaviour is
// known: fault=true saturates the counter upward and records the faulty
// stage; fault=false decays the counter. Training on a fault allocates the
// entry (evicting a tag-mismatched occupant).
func (t *TEP) Train(pc, history uint64, fault bool, stage isa.Stage) {
	t.Stats.Trained++
	e := &t.tab[t.index(pc, history)]
	tg := tagOf(pc)
	if !e.valid || e.tag != tg {
		if !fault {
			return // don't allocate entries for well-behaved instructions
		}
		if e.valid {
			t.Stats.TagEvicts++
		}
		*e = entry{tag: tg, counter: 1, stage: stage, valid: true}
		if t.Obs != nil {
			t.Obs.Event(obs.Event{Kind: obs.KindTEPTrain, PC: pc, Stage: stage, A: 1})
		}
		return
	}
	if fault {
		if e.counter < 3 {
			e.counter++
		}
		e.stage = stage
		if t.Obs != nil {
			t.Obs.Event(obs.Event{Kind: obs.KindTEPTrain, PC: pc, Stage: stage, A: uint64(e.counter)})
		}
	} else if e.counter > 0 {
		e.counter--
	}
}

// SetCritical stores the CDL's criticality estimate for pc (§3.5.2). It is a
// no-op if the instruction has no allocated entry.
func (t *TEP) SetCritical(pc, history uint64, critical bool) {
	e := &t.tab[t.index(pc, history)]
	if e.valid && e.tag == tagOf(pc) {
		e.critical = critical
	}
}

// Counter exposes the saturating counter value for pc, for tests and
// diagnostics; returns 0 for absent entries.
func (t *TEP) Counter(pc, history uint64) uint8 {
	e := &t.tab[t.index(pc, history)]
	if e.valid && e.tag == tagOf(pc) {
		return e.counter
	}
	return 0
}

// Reset clears the table and statistics.
func (t *TEP) Reset() {
	for i := range t.tab {
		t.tab[i] = entry{}
	}
	t.Stats = Stats{}
}

// StorageBits returns the predictor's storage cost in bits, used by the
// area/power model: per entry a 16-bit tag, 2-bit counter, 4-bit stage/fault
// field (§3.2.1) and 1 criticality bit.
func (t *TEP) StorageBits() int {
	const perEntry = 16 + 2 + 4 + 1
	return t.cfg.Entries * perEntry
}
