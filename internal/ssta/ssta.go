// Package ssta is the statistical static timing analysis substrate of §4.3:
// the paper uses an in-house tool with SPICE-characterized gate delay
// distributions, modeling process variation as Gaussian deviations of
// transistor length, width and oxide thickness (±20% around nominal). We
// reproduce that structure analytically: every gate gets a nominal delay by
// cell type, scaled by a per-gate process-variation factor derived from
// sampled L/W/tox deviations and by the alpha-power-law supply-voltage
// factor. Monte-Carlo sampling over process corners yields the distribution
// of the circuit's critical-path delay; the paper's violation criterion is
// µ+2σ of the (sensitized) delay against the cycle time.
package ssta

import (
	"math"

	"tvsched/internal/circuit"
	"tvsched/internal/fault"
	"tvsched/internal/rng"
)

// NominalDelay returns the unit delay of a cell type in FO4-normalized
// units (45nm-class relative cell delays).
func NominalDelay(t circuit.GateType) float64 {
	switch t {
	case circuit.Not, circuit.Buf:
		return 0.7
	case circuit.Nand, circuit.Nor:
		return 1.0
	case circuit.And, circuit.Or:
		return 1.3 // NAND/NOR + inverter
	case circuit.Xor, circuit.Xnor:
		return 1.8
	case circuit.Mux2:
		return 1.6
	default:
		return 1.0
	}
}

// Variation describes the Gaussian process variation of §4.3: transistor
// length, width and oxide thickness deviate around nominal; the paper
// assumes ±20% deviation, which we treat as the 3σ excursion.
type Variation struct {
	SigmaL, SigmaW, SigmaTox float64
}

// DefaultVariation returns the ±20% (3σ) assumption of §4.3.
func DefaultVariation() Variation {
	s := 0.20 / 3
	return Variation{SigmaL: s, SigmaW: s, SigmaTox: s}
}

// gateFactor converts sampled parameter deviations into a delay multiplier:
// delay grows with channel length and oxide thickness and shrinks with
// width (first-order alpha-power model).
func gateFactor(zl, zw, zt float64, v Variation) float64 {
	f := (1 + v.SigmaL*zl) * (1 + v.SigmaTox*zt) / (1 + v.SigmaW*zw)
	if f < 0.5 {
		f = 0.5
	}
	return f
}

// Result summarizes a Monte-Carlo timing run.
type Result struct {
	Mean   float64
	Sigma  float64
	Min    float64
	Max    float64
	Trials int
}

// MuPlus2Sigma is the paper's 95%-confidence delay (§4.3).
func (r *Result) MuPlus2Sigma() float64 { return r.Mean + 2*r.Sigma }

// Analyze runs trials Monte-Carlo samples of the critical-path delay of nl
// at supply voltage vdd, with per-gate process variation v.
func Analyze(nl *circuit.Netlist, v Variation, vdd float64, trials int, seed uint64) Result {
	src := rng.New(rng.Mix(seed ^ 0x55a))
	scale := fault.DelayScale(vdd)
	res := Result{Min: math.Inf(1), Max: math.Inf(-1), Trials: trials}
	arrive := make([]float64, nl.NumNodes())
	var sum, sumSq float64
	for t := 0; t < trials; t++ {
		crit := criticalDelay(nl, v, scale, src, arrive, nil)
		sum += crit
		sumSq += crit * crit
		if crit < res.Min {
			res.Min = crit
		}
		if crit > res.Max {
			res.Max = crit
		}
	}
	res.Mean = sum / float64(trials)
	variance := sumSq/float64(trials) - res.Mean*res.Mean
	if variance > 0 {
		res.Sigma = math.Sqrt(variance)
	}
	return res
}

// AnalyzeSensitized runs Monte-Carlo timing restricted to a sensitized gate
// subset (the gates toggled by a particular dynamic instance, §S1): only
// toggled gates contribute delay, giving the per-instance sensitized path
// delay whose µ+2σ the fault criterion tests.
func AnalyzeSensitized(nl *circuit.Netlist, sensitized []bool, v Variation, vdd float64, trials int, seed uint64) Result {
	src := rng.New(rng.Mix(seed ^ 0x5e5))
	scale := fault.DelayScale(vdd)
	res := Result{Min: math.Inf(1), Max: math.Inf(-1), Trials: trials}
	arrive := make([]float64, nl.NumNodes())
	var sum, sumSq float64
	for t := 0; t < trials; t++ {
		crit := criticalDelay(nl, v, scale, src, arrive, sensitized)
		sum += crit
		sumSq += crit * crit
		if crit < res.Min {
			res.Min = crit
		}
		if crit > res.Max {
			res.Max = crit
		}
	}
	res.Mean = sum / float64(trials)
	variance := sumSq/float64(trials) - res.Mean*res.Mean
	if variance > 0 {
		res.Sigma = math.Sqrt(variance)
	}
	return res
}

// criticalDelay computes one Monte-Carlo sample of the longest path through
// nl. If sensitized is non-nil, only gates marked true propagate and accrue
// delay (untoggled gates hold their value and sensitize no path).
func criticalDelay(nl *circuit.Netlist, v Variation, scale float64, src *rng.Source, arrive []float64, sensitized []bool) float64 {
	for i := 0; i < nl.NumInputs; i++ {
		arrive[i] = 0
	}
	crit := 0.0
	for i := range nl.Gates {
		g := &nl.Gates[i]
		id := nl.NumInputs + i
		if sensitized != nil && !sensitized[i] {
			arrive[id] = 0
			continue
		}
		in := 0.0
		for _, p := range g.In {
			if arrive[p] > in {
				in = arrive[p]
			}
		}
		d := NominalDelay(g.Type) * gateFactor(src.Norm(), src.Norm(), src.Norm(), v) * scale
		arrive[id] = in + d
		if arrive[id] > crit {
			crit = arrive[id]
		}
	}
	return crit
}

// NominalCritical returns the zero-variation critical delay at nominal
// voltage — the number a cycle-time budget would be set against.
func NominalCritical(nl *circuit.Netlist) float64 {
	arrive := make([]float64, nl.NumNodes())
	crit := 0.0
	for i := range nl.Gates {
		g := &nl.Gates[i]
		id := nl.NumInputs + i
		in := 0.0
		for _, p := range g.In {
			if arrive[p] > in {
				in = arrive[p]
			}
		}
		arrive[id] = in + NominalDelay(g.Type)
		if arrive[id] > crit {
			crit = arrive[id]
		}
	}
	return crit
}

// VMin finds the minimum supply voltage at which the circuit still meets the
// cycle budget tclk under the paper's µ+2σ criterion: the largest-delay
// corner of the search is evaluated by Monte-Carlo at each probe. The search
// is a bisection over [0.7, 1.3] V to within 1 mV. This is the circuit-level
// anchor behind the fault model's voltage calibration: a stage whose
// nominal-voltage µ+2σ sits at fraction m of the cycle first violates at the
// voltage where DelayScale crosses 1/m.
func VMin(nl *circuit.Netlist, v Variation, tclk float64, trials int, seed uint64) float64 {
	meets := func(vdd float64) bool {
		r := Analyze(nl, v, vdd, trials, seed)
		return r.MuPlus2Sigma() <= tclk
	}
	lo, hi := 0.70, 1.30
	if !meets(hi) {
		return hi // budget unmeetable even at the top of the range
	}
	if meets(lo) {
		return lo
	}
	for hi-lo > 0.001 {
		mid := (lo + hi) / 2
		if meets(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}

// CycleBudget returns a cycle time that gives the circuit the target margin
// at the nominal supply: tclk = (µ+2σ at 1.10 V) / margin. A margin of 0.95
// means the critical sensitized path consumes 95% of the cycle at nominal —
// the regime the paper's tighter operating points live in.
func CycleBudget(nl *circuit.Netlist, v Variation, margin float64, trials int, seed uint64) float64 {
	r := Analyze(nl, v, fault.VNominal, trials, seed)
	return r.MuPlus2Sigma() / margin
}
