package ssta

import (
	"math"
	"testing"

	"tvsched/internal/circuit"
	"tvsched/internal/fault"
	"tvsched/internal/netlist"
)

func chainNet(n int) *circuit.Netlist {
	b := circuit.NewBuilder("chain", 1)
	node := b.Input(0)
	for i := 0; i < n; i++ {
		node = b.Not(node)
	}
	b.Output(node)
	return b.MustBuild()
}

func TestNominalCriticalChain(t *testing.T) {
	nl := chainNet(10)
	want := 10 * NominalDelay(circuit.Not)
	if got := NominalCritical(nl); math.Abs(got-want) > 1e-9 {
		t.Fatalf("chain critical %v, want %v", got, want)
	}
}

func TestAnalyzeMeanNearNominal(t *testing.T) {
	nl := chainNet(50)
	r := Analyze(nl, DefaultVariation(), fault.VNominal, 2000, 1)
	nom := NominalCritical(nl)
	if r.Mean < nom*0.95 || r.Mean > nom*1.10 {
		t.Fatalf("MC mean %v far from nominal %v", r.Mean, nom)
	}
	if r.Sigma <= 0 {
		t.Fatal("no variation observed")
	}
	if r.Min >= r.Max {
		t.Fatal("degenerate min/max")
	}
	if r.MuPlus2Sigma() <= r.Mean {
		t.Fatal("mu+2sigma must exceed mean")
	}
}

func TestVoltageScalesDelay(t *testing.T) {
	nl := chainNet(20)
	hi := Analyze(nl, DefaultVariation(), fault.VNominal, 500, 2)
	lo := Analyze(nl, DefaultVariation(), fault.VHighFault, 500, 2)
	ratio := lo.Mean / hi.Mean
	want := fault.DelayScale(fault.VHighFault)
	if ratio < want*0.98 || ratio > want*1.02 {
		t.Fatalf("voltage stretch %v, want ~%v", ratio, want)
	}
}

func TestAnalyzeDeterministic(t *testing.T) {
	nl := chainNet(20)
	a := Analyze(nl, DefaultVariation(), fault.VNominal, 200, 7)
	b := Analyze(nl, DefaultVariation(), fault.VNominal, 200, 7)
	if a != b {
		t.Fatal("Monte-Carlo not deterministic for fixed seed")
	}
}

func TestSensitizedSubsetShorter(t *testing.T) {
	// Sensitizing only a prefix of the chain must yield a shorter critical
	// delay than the full circuit.
	nl := chainNet(40)
	sens := make([]bool, nl.NumGates())
	for i := 0; i < 10; i++ {
		sens[i] = true
	}
	full := Analyze(nl, DefaultVariation(), fault.VNominal, 300, 3)
	part := AnalyzeSensitized(nl, sens, DefaultVariation(), fault.VNominal, 300, 3)
	if part.Mean >= full.Mean*0.5 {
		t.Fatalf("10/40 sensitized mean %v not well below full %v", part.Mean, full.Mean)
	}
}

func TestSensitizedAllEqualsFull(t *testing.T) {
	nl := chainNet(15)
	sens := make([]bool, nl.NumGates())
	for i := range sens {
		sens[i] = true
	}
	full := Analyze(nl, DefaultVariation(), fault.VNominal, 300, 9)
	all := AnalyzeSensitized(nl, sens, DefaultVariation(), fault.VNominal, 300, 9)
	// Different RNG salt streams, so compare distributions loosely.
	if all.Mean < full.Mean*0.95 || all.Mean > full.Mean*1.05 {
		t.Fatalf("fully-sensitized mean %v vs full %v", all.Mean, full.Mean)
	}
}

func TestComponentTimingOrdering(t *testing.T) {
	// Deeper components must show larger critical delays.
	alu := NominalCritical(netlist.ALU32())
	fwd := NominalCritical(netlist.FwdCheck())
	sel := NominalCritical(netlist.IQSelect())
	if !(alu > sel && sel > fwd) {
		t.Fatalf("delay ordering violated: alu=%v sel=%v fwd=%v", alu, sel, fwd)
	}
}

func TestNominalDelayPositive(t *testing.T) {
	for g := circuit.And; g < circuit.NumGateTypes; g++ {
		if NominalDelay(g) <= 0 {
			t.Fatalf("non-positive delay for %v", g)
		}
	}
}

func BenchmarkAnalyzeALU(b *testing.B) {
	nl := netlist.ALU32()
	for i := 0; i < b.N; i++ {
		Analyze(nl, DefaultVariation(), fault.VHighFault, 1, uint64(i))
	}
}

func TestVMinMonotoneInBudget(t *testing.T) {
	nl := netlist.FwdCheck()
	v := DefaultVariation()
	tight := CycleBudget(nl, v, 0.98, 200, 1)
	loose := CycleBudget(nl, v, 0.80, 200, 1)
	vTight := VMin(nl, v, tight, 200, 1)
	vLoose := VMin(nl, v, loose, 200, 1)
	if vTight <= vLoose {
		t.Fatalf("tighter budget must require higher voltage: %v vs %v", vTight, vLoose)
	}
	// A 98%-margin budget must be met at nominal but not far below.
	if vTight > fault.VNominal {
		t.Fatalf("98%% margin unmeetable at nominal: VMin %v", vTight)
	}
	if vTight < 1.0 {
		t.Fatalf("98%% margin met implausibly low: VMin %v", vTight)
	}
}

func TestVMinExtremes(t *testing.T) {
	nl := chainNet(10)
	v := DefaultVariation()
	// Absurdly tight budget: unmeetable anywhere.
	if got := VMin(nl, v, 0.001, 50, 1); got != 1.30 {
		t.Fatalf("unmeetable budget VMin %v, want range top", got)
	}
	// Absurdly loose budget: met at the range bottom.
	if got := VMin(nl, v, 1e9, 50, 1); got != 0.70 {
		t.Fatalf("trivial budget VMin %v, want range bottom", got)
	}
}
