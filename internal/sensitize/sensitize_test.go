package sensitize

import (
	"testing"
)

func TestComponentNames(t *testing.T) {
	want := map[Component]string{
		CompIQSelect: "IssueQSelect", CompAGEN: "AGen",
		CompFwdCheck: "ForwardCheck", CompALU: "ALU",
	}
	for c, w := range want {
		if c.String() != w {
			t.Errorf("%d.String() = %q", c, c.String())
		}
	}
}

func TestNetlistsResolve(t *testing.T) {
	for c := CompIQSelect; c < NumComponents; c++ {
		nl := c.Netlist()
		if nl == nil || nl.NumGates() == 0 {
			t.Fatalf("component %v has no netlist", c)
		}
	}
}

func TestSixBenchmarks(t *testing.T) {
	ps := SPEC2000()
	if len(ps) != 6 {
		t.Fatalf("Figure 7 has 6 benchmarks, got %d", len(ps))
	}
	want := []string{"bzip", "gap", "gzip", "mcf", "parser", "vortex"}
	for i, p := range ps {
		if p.Name != want[i] {
			t.Errorf("benchmark %d = %s, want %s", i, p.Name, want[i])
		}
	}
	if _, ok := ProfileByName("vortex"); !ok {
		t.Error("vortex lookup failed")
	}
	if _, ok := ProfileByName("nope"); ok {
		t.Error("bogus profile found")
	}
}

func TestZeroVariationPerfectCommonality(t *testing.T) {
	// With no input variation across instances, every instance sensitizes
	// exactly the same paths: |φ|/|ψ| == 1.
	zero := Profile{Name: "zero", VarBits: 2, FlipP: 0}
	opt := Options{StaticPCs: 8, Instances: 8, Seed: 3}
	for c := CompIQSelect; c < NumComponents; c++ {
		r := Measure(c, zero, opt)
		if r.Commonality != 1.0 {
			t.Errorf("%v: zero-variation commonality %v", c, r.Commonality)
		}
	}
}

func TestMoreVariationLowersCommonality(t *testing.T) {
	low := Profile{Name: "low", VarBits: 2, FlipP: 0.005}
	high := Profile{Name: "high", VarBits: 6, FlipP: 0.08}
	opt := Options{StaticPCs: 24, Instances: 16, Seed: 5}
	for c := CompIQSelect; c < NumComponents; c++ {
		cl := Measure(c, low, opt).Commonality
		ch := Measure(c, high, opt).Commonality
		if ch >= cl {
			t.Errorf("%v: variation did not lower commonality (%v vs %v)", c, ch, cl)
		}
	}
}

func TestMeasureDeterministic(t *testing.T) {
	prof, _ := ProfileByName("bzip")
	opt := Options{StaticPCs: 8, Instances: 8, Seed: 11}
	a := Measure(CompALU, prof, opt)
	b := Measure(CompALU, prof, opt)
	if a != b {
		t.Fatal("Measure not deterministic")
	}
}

func TestFigure7Shape(t *testing.T) {
	// The §S1.3 findings: high commonality (most cells above 0.75, averages
	// in the high 80s), with vortex the standout (§S1.3 calls out its small
	// input value range).
	if testing.Short() {
		t.Skip("gate-level study is slow in -short mode")
	}
	results, avg := MeasureAll(DefaultOptions())
	if len(results) != 6*int(NumComponents) {
		t.Fatalf("grid size %d", len(results))
	}
	for c := CompIQSelect; c < NumComponents; c++ {
		if avg[c] < 0.80 || avg[c] > 0.98 {
			t.Errorf("%v average commonality %v outside the paper's band", c, avg[c])
		}
	}
	// vortex tops every component.
	for c := CompIQSelect; c < NumComponents; c++ {
		var vortex, best float64
		for _, r := range results {
			if r.Component != c {
				continue
			}
			if r.Benchmark == "vortex" {
				vortex = r.Commonality
			}
			if r.Commonality > best {
				best = r.Commonality
			}
		}
		if vortex < best-1e-9 {
			t.Errorf("%v: vortex %v is not the most common (best %v)", c, vortex, best)
		}
	}
}

func BenchmarkMeasureALU(b *testing.B) {
	prof, _ := ProfileByName("bzip")
	opt := Options{StaticPCs: 4, Instances: 8, Seed: 1}
	for i := 0; i < b.N; i++ {
		Measure(CompALU, prof, opt)
	}
}
