// Package sensitize reproduces the supplemental cross-layer study of §S1:
// the commonality of sensitized logic paths across dynamic instances of a
// static instruction. For each static PC we generate the input vectors its
// dynamic instances apply to a synthesized component (together with the
// preceding instruction's vector, which sets the internal logic state), run
// gate-level simulation, and record the set of gates that change state. With
// φ the gates toggling in every instance and ψ the gates toggling in at
// least one, the commonality is |φ|/|ψ| (§S1.2); Figure 7 reports the
// frequency-weighted average per benchmark and component.
package sensitize

import (
	"math"

	"tvsched/internal/circuit"
	"tvsched/internal/netlist"
	"tvsched/internal/rng"
)

// Component selects one of the four studied blocks.
type Component int

const (
	CompIQSelect Component = iota
	CompAGEN
	CompFwdCheck
	CompALU
	NumComponents
)

// String names the component as in Figure 7.
func (c Component) String() string {
	switch c {
	case CompIQSelect:
		return "IssueQSelect"
	case CompAGEN:
		return "AGen"
	case CompFwdCheck:
		return "ForwardCheck"
	case CompALU:
		return "ALU"
	default:
		return "component?"
	}
}

// Netlist returns the component's gate-level implementation.
func (c Component) Netlist() *circuit.Netlist {
	switch c {
	case CompIQSelect:
		return netlist.IQSelect()
	case CompAGEN:
		return netlist.AGEN()
	case CompFwdCheck:
		return netlist.FwdCheck()
	default:
		return netlist.ALU32()
	}
}

// Profile models one SPEC2000 integer benchmark's operand behaviour — the
// input-value locality that drives sensitized-path commonality. VarBits is
// how many low operand bits differ across dynamic instances of the same
// static instruction (loop indices and striding addresses change only low
// bits); FlipP is the probability that a context bit (an unrelated operand
// bit, an issue-queue occupancy bit, a bypass tag bit) differs between
// instances.
type Profile struct {
	Name    string
	VarBits int
	FlipP   float64
}

// SPEC2000 returns the six benchmarks of Figure 7. vortex operates on a
// small range of input values (§S1.3) and shows the highest commonality.
func SPEC2000() []Profile {
	return []Profile{
		{Name: "bzip", VarBits: 5, FlipP: 0.016},
		{Name: "gap", VarBits: 4, FlipP: 0.013},
		{Name: "gzip", VarBits: 4, FlipP: 0.014},
		{Name: "mcf", VarBits: 6, FlipP: 0.019},
		{Name: "parser", VarBits: 6, FlipP: 0.018},
		{Name: "vortex", VarBits: 2, FlipP: 0.009},
	}
}

// ProfileByName looks up a SPEC2000 profile.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range SPEC2000() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// pcTemplate is the fixed part of a static instruction's component inputs.
// Dynamic instances vary arithmetically — loop indices increment, addresses
// stride — so consecutive instances of a PC apply near-identical input
// transitions, which is precisely the §S1.1 mechanism behind path
// commonality.
type pcTemplate struct {
	comp Component
	// ALU / AGEN operand fields.
	opA, opB     uint32
	strideA      uint32
	prevA, prevB uint32
	prevStride   uint32
	op           int
	// IQSelect request vectors.
	reqBase  uint32
	volatile uint32 // request lines that flicker with occupancy
	prevReq  uint32
	// FwdCheck tag fields.
	resTags  [4]uint8
	srcTags  [8]uint8
	valid    uint8
	tagPool  uint8 // size of the physical-register pool tags rotate through
	prevTags [4]uint8
}

// buildTemplate creates a static instruction's input structure. The
// profile's VarBits bounds the stride magnitude (how many low bits dynamic
// instances exercise); FlipP sets how often unrelated context bits differ.
func buildTemplate(c Component, nl *circuit.Netlist, prof Profile, src *rng.Source) pcTemplate {
	t := pcTemplate{comp: c}
	switch c {
	case CompALU:
		t.opA = src.Uint32()
		t.opB = src.Uint32()
		t.strideA = 1 << src.Intn(prof.VarBits)
		t.prevA = src.Uint32()
		t.prevB = src.Uint32()
		t.prevStride = 1 << src.Intn(prof.VarBits)
		t.op = src.Intn(8)
	case CompAGEN:
		t.opA = src.Uint32() &^ 0x7       // base address, aligned
		t.opB = uint32(src.Intn(1 << 14)) // immediate offset
		t.strideA = uint32((1 << src.Intn(prof.VarBits)) * 4)
		t.prevA = src.Uint32() &^ 0x7
		t.prevB = uint32(src.Intn(1 << 14))
		t.prevStride = uint32((1 << src.Intn(prof.VarBits)) * 4)
	case CompIQSelect:
		// Only a handful of issue-queue entries are operand-ready in a
		// cycle (the pipeline measures ~2-8 of 32), so the request vector
		// is sparse and most of the token window survives the ripple.
		for b := 0; b < 32; b++ {
			if src.Bool(0.15) {
				t.reqBase |= 1 << b
			}
		}
		// The canonical cycle-to-cycle change: one entry's ready bit flips.
		flip := src.Intn(28)
		t.prevReq = t.reqBase ^ (1 << flip)
		// Occupancy flicker clusters around the same loop's queue slots, so
		// deviating instances sensitize cones that overlap the canonical one.
		for i := 0; i < 2; i++ {
			t.volatile |= 1 << (flip + 1 + src.Intn(3))
		}
	case CompFwdCheck:
		t.tagPool = uint8(2 + prof.VarBits)
		base := uint8(src.Intn(96 - int(t.tagPool)))
		for r := 0; r < 4; r++ {
			t.resTags[r] = base + uint8(src.Intn(int(t.tagPool)))
			t.prevTags[r] = base + uint8(src.Intn(int(t.tagPool)))
		}
		for sIdx := 0; sIdx < 8; sIdx++ {
			t.srcTags[sIdx] = base + uint8(src.Intn(int(t.tagPool)))
		}
		t.valid = uint8(src.Intn(16))
	}
	return t
}

func put32(out []bool, at int, v uint32) {
	for i := 0; i < 32; i++ {
		out[at+i] = v&(1<<i) != 0
	}
}

func putN(out []bool, at, n int, v uint64) {
	for i := 0; i < n; i++ {
		out[at+i] = v&(1<<i) != 0
	}
}

// instanceInputs materializes the (previous, current) input vectors of
// dynamic instance k.
func (t *pcTemplate) instanceInputs(k int, nl *circuit.Netlist, prof Profile, src *rng.Source, prev, cur []bool) ([]bool, []bool) {
	n := nl.NumInputs
	if cap(prev) < n {
		prev = make([]bool, n)
		cur = make([]bool, n)
	}
	prev, cur = prev[:n], cur[:n]
	_ = k
	// Dynamic operand values cluster strongly (value locality): most
	// instances repeat the canonical input transition exactly; a minority
	// deviate by a small stride in the low bits. pDev and the deviation
	// magnitude carry the per-benchmark input-range differences of §S1.3.
	pDev := 2.5 * prof.FlipP * float64(prof.VarBits) / 4
	// Per-component sensitivity: what one deviated instance does to the
	// toggle set differs by structure (a flipped request line re-routes the
	// whole token ripple; an ALU operand delta only perturbs a carry cone).
	switch t.comp {
	case CompIQSelect:
		pDev *= 0.18
	case CompAGEN:
		pDev *= 0.45
	case CompFwdCheck:
		pDev *= 0.60
	}
	devA := uint32(0)
	devP := uint32(0)
	if src.Bool(pDev) {
		// The loop stride advances producer and consumer values together,
		// so the input *transition* — and hence the sensitized path — is
		// largely preserved; only the low-order carry cone differs.
		m := uint32(1 << src.Intn(2))
		devA = m * t.strideA
		devP = m * t.prevStride
	}
	if src.Bool(pDev / 3) {
		devA += t.strideA // occasional uncorrelated slip
	}
	switch t.comp {
	case CompALU:
		put32(cur, 0, t.opA+devA)
		put32(cur, 32, t.opB)
		putN(cur, 64, 3, uint64(t.op))
		cur[67] = t.op == 7
		put32(prev, 0, t.prevA+devP)
		put32(prev, 32, t.prevB)
		putN(prev, 64, 3, uint64(t.op))
		prev[67] = t.op == 7
	case CompAGEN:
		put32(cur, 0, t.opA+devA)
		putN(cur, 32, 16, uint64(t.opB))
		put32(prev, 0, t.prevA+devP)
		putN(prev, 32, 16, uint64(t.prevB))
	case CompIQSelect:
		req := t.reqBase
		preq := t.prevReq
		if src.Bool(pDev) {
			// One volatile request line differs with queue occupancy.
			bits := []uint32{}
			for b := uint32(0); b < 32; b++ {
				if t.volatile&(1<<b) != 0 {
					bits = append(bits, b)
				}
			}
			req ^= 1 << bits[src.Intn(len(bits))]
		}
		put32(cur, 0, req)
		put32(prev, 0, preq)
	case CompFwdCheck:
		idx := 0
		write := func(out []bool, tags [4]uint8) {
			at := 0
			for r := 0; r < 4; r++ {
				putN(out, at, 7, uint64(tags[r]))
				at += 7
			}
			for r := 0; r < 4; r++ {
				out[at] = t.valid&(1<<r) != 0
				at++
			}
			for s := 0; s < 8; s++ {
				putN(out, at, 7, uint64(t.srcTags[s]))
				at += 7
			}
		}
		curTags := t.resTags
		// Renaming occasionally rotates a tag within the small pool.
		if src.Bool(pDev / 2) {
			r := src.Intn(4)
			curTags[r] = t.resTags[r] + 1
		}
		write(cur, curTags)
		write(prev, t.prevTags)
		_ = idx
	}
	return prev, cur
}

// Result is the commonality of one (benchmark, component) cell of Figure 7.
type Result struct {
	Benchmark   string
	Component   Component
	Commonality float64 // |φ|/|ψ|, frequency-weighted over static PCs
	StaticPCs   int
	Instances   int
}

// Options sizes the study.
type Options struct {
	StaticPCs int // distinct static instructions exercised per component
	Instances int // dynamic instances per static instruction
	Seed      uint64
}

// DefaultOptions matches the scale that stabilizes the averages.
func DefaultOptions() Options { return Options{StaticPCs: 64, Instances: 24, Seed: 1} }

// Measure computes the sensitized-path commonality of one benchmark on one
// component.
func Measure(c Component, prof Profile, opt Options) Result {
	nl := c.Netlist()
	src := rng.New(rng.Mix(opt.Seed ^ rng.Mix(uint64(c)<<8)))
	for _, ch := range prof.Name {
		src = src.Derive(uint64(ch))
	}
	stPrev := nl.NewState()
	stCur := nl.NewState()
	phi := make([]bool, nl.NumGates())
	psi := make([]bool, nl.NumGates())
	toggled := make([]bool, nl.NumGates())
	var scratch []int
	var wSum, cwSum float64

	for pc := 0; pc < opt.StaticPCs; pc++ {
		tmpl := buildTemplate(c, nl, prof, src)
		for i := range phi {
			phi[i] = true
			psi[i] = false
		}
		sawAny := false
		var prevIn, curIn []bool
		for k := 0; k < opt.Instances; k++ {
			prevIn, curIn = tmpl.instanceInputs(k, nl, prof, src, prevIn, curIn)
			nl.Eval(prevIn, stPrev)
			nl.Eval(curIn, stCur)
			scratch = nl.Toggles(stPrev, stCur, scratch[:0])
			for i := range toggled {
				toggled[i] = false
			}
			for _, g := range scratch {
				toggled[g] = true
				psi[g] = true
			}
			for i := range phi {
				phi[i] = phi[i] && toggled[i]
			}
			sawAny = sawAny || len(scratch) > 0
		}
		if !sawAny {
			continue
		}
		nPhi, nPsi := 0, 0
		for i := range phi {
			if psi[i] {
				nPsi++
				if phi[i] {
					nPhi++
				}
			}
		}
		if nPsi == 0 {
			continue
		}
		// Frequency weight: hot instructions dominate the weighted average
		// (§S1.3); sub-linear Zipf-like weights by PC rank.
		w := 1.0 / math.Sqrt(float64(pc+1))
		wSum += w
		cwSum += w * float64(nPhi) / float64(nPsi)
	}
	res := Result{Benchmark: prof.Name, Component: c,
		StaticPCs: opt.StaticPCs, Instances: opt.Instances}
	if wSum > 0 {
		res.Commonality = cwSum / wSum
	}
	return res
}

// MeasureAll runs the full Figure 7 grid: every SPEC2000 benchmark on every
// component, plus per-component averages.
func MeasureAll(opt Options) ([]Result, map[Component]float64) {
	var out []Result
	avg := make(map[Component]float64)
	for c := CompIQSelect; c < NumComponents; c++ {
		sum := 0.0
		for _, prof := range SPEC2000() {
			r := Measure(c, prof, opt)
			out = append(out, r)
			sum += r.Commonality
		}
		avg[c] = sum / float64(len(SPEC2000()))
	}
	return out, avg
}
