// Package adapt quantifies the trade the paper's introduction motivates:
// "microprocessors can operate at a tighter frequency, where predictable
// errors frequently occur and are tolerated with minimal performance loss."
// We hold frequency fixed and scale the supply instead (the dual knob): as
// VDD drops, switching and leakage energy fall steeply, but sensitized paths
// start missing timing and the handling scheme pays overhead cycles. The
// energy-optimal operating point is where those slopes cross — and it moves
// to substantially lower voltages under violation-aware scheduling than
// under stall- or replay-based tolerance, because the overhead slope is an
// order of magnitude flatter.
package adapt

import (
	"fmt"
	"sort"

	"tvsched/internal/core"
	"tvsched/internal/energy"
	"tvsched/internal/experiments"
	"tvsched/internal/fault"
)

// Point is one characterized operating point.
type Point struct {
	VDD       float64
	IPC       float64
	FaultRate float64 // fraction of committed instructions
	// PerfOverhead is the IPC degradation versus the nominal fault-free run.
	PerfOverhead float64
	// EnergyPJ is total energy at this supply (voltage-scaled).
	EnergyPJ float64
	// EDP is the voltage-scaled energy-delay product (pJ·cycles).
	EDP float64
}

// Curve is a characterized scheme: its operating points, ordered from the
// nominal supply downward.
type Curve struct {
	Bench  string
	Scheme core.Scheme
	Points []Point
}

// DefaultGrid returns the voltage sweep used by the examples: nominal down
// through the paper's two faulty environments.
func DefaultGrid() []float64 {
	return []float64{fault.VNominal, 1.08, 1.06, fault.VLowFault, 1.02, 1.00, 0.985, fault.VHighFault}
}

// Characterize sweeps the grid for one benchmark and scheme. The nominal
// point doubles as the fault-free baseline for overhead computation.
func Characterize(bench string, scheme core.Scheme, grid []float64, cfg experiments.Config) (Curve, error) {
	if len(grid) == 0 {
		grid = DefaultGrid()
	}
	grid = append([]float64(nil), grid...)
	sort.Sort(sort.Reverse(sort.Float64Slice(grid)))
	if grid[0] < fault.VNominal {
		grid = append([]float64{fault.VNominal}, grid...)
	}

	c := Curve{Bench: bench, Scheme: scheme}
	var base experiments.Run
	for i, v := range grid {
		r, err := experiments.Simulate(bench, scheme, v, cfg)
		if err != nil {
			return Curve{}, fmt.Errorf("adapt: %s/%v@%.3f: %w", bench, scheme, v, err)
		}
		if i == 0 {
			base = r
		}
		scaled := energy.ScaleToVoltage(r.Energy, v, fault.VNominal)
		c.Points = append(c.Points, Point{
			VDD:          v,
			IPC:          r.Stats.IPC(),
			FaultRate:    r.Stats.FaultRate(),
			PerfOverhead: r.PerfOverhead(&base),
			EnergyPJ:     scaled.TotalPJ(),
			EDP:          scaled.EDP(),
		})
	}
	return c, nil
}

// Best returns the operating point with the lowest energy-delay product.
func (c *Curve) Best() Point {
	if len(c.Points) == 0 {
		return Point{}
	}
	best := c.Points[0]
	for _, p := range c.Points[1:] {
		if p.EDP < best.EDP {
			best = p
		}
	}
	return best
}

// BestUnder returns the lowest-EDP point whose performance overhead stays
// under the budget (e.g. 0.05 for "give up at most 5% performance").
func (c *Curve) BestUnder(perfBudget float64) Point {
	if len(c.Points) == 0 {
		return Point{}
	}
	best := c.Points[0] // nominal always satisfies the budget (overhead 0)
	for _, p := range c.Points[1:] {
		if p.PerfOverhead <= perfBudget && p.EDP < best.EDP {
			best = p
		}
	}
	return best
}

// EDPSaving returns the fractional EDP improvement of the curve's best point
// versus its nominal point.
func (c *Curve) EDPSaving() float64 {
	if len(c.Points) == 0 {
		return 0
	}
	nominal := c.Points[0].EDP
	if nominal == 0 {
		return 0
	}
	return 1 - c.Best().EDP/nominal
}
