package adapt

import (
	"testing"

	"tvsched/internal/core"
	"tvsched/internal/experiments"
	"tvsched/internal/fault"
)

func quickCfg() experiments.Config {
	return experiments.Config{Insts: 30000, Warmup: 10000, Seed: 1, Parallel: true}
}

func TestCharacterizeBasics(t *testing.T) {
	c, err := Characterize("bzip2", core.ABS, []float64{fault.VNominal, fault.VLowFault, fault.VHighFault}, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Points) != 3 {
		t.Fatalf("points %d", len(c.Points))
	}
	// Grid must be sorted nominal-first.
	if c.Points[0].VDD != fault.VNominal {
		t.Fatalf("first point %v", c.Points[0].VDD)
	}
	if c.Points[0].FaultRate != 0 || c.Points[0].PerfOverhead != 0 {
		t.Fatal("nominal point must be fault- and overhead-free")
	}
	// Fault rate grows and energy falls as voltage drops.
	for i := 1; i < len(c.Points); i++ {
		if c.Points[i].FaultRate < c.Points[i-1].FaultRate {
			t.Fatalf("fault rate not monotone at %v", c.Points[i].VDD)
		}
		if c.Points[i].EnergyPJ >= c.Points[i-1].EnergyPJ*1.02 {
			t.Fatalf("energy not falling at %v", c.Points[i].VDD)
		}
	}
}

func TestCharacterizeUnsortedGridAndMissingNominal(t *testing.T) {
	c, err := Characterize("mcf", core.ABS, []float64{fault.VHighFault, fault.VLowFault}, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if c.Points[0].VDD != fault.VNominal {
		t.Fatal("nominal point not prepended")
	}
	if c.Points[1].VDD != fault.VLowFault || c.Points[2].VDD != fault.VHighFault {
		t.Fatal("grid not sorted descending")
	}
}

func TestViolationAwareMovesOperatingPoint(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-point sweep is slow in -short mode")
	}
	grid := []float64{fault.VNominal, fault.VLowFault, fault.VHighFault}
	abs, err := Characterize("bzip2", core.ABS, grid, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	razor, err := Characterize("bzip2", core.Razor, grid, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// The paper's motivation, quantified: the violation-aware scheme's
	// energy-optimal point sits at or below the replay scheme's, and saves
	// at least as much EDP.
	if abs.Best().VDD > razor.Best().VDD {
		t.Fatalf("ABS best point %vV above Razor's %vV", abs.Best().VDD, razor.Best().VDD)
	}
	if abs.EDPSaving() < razor.EDPSaving() {
		t.Fatalf("ABS EDP saving %v below Razor's %v", abs.EDPSaving(), razor.EDPSaving())
	}
	// ABS should actually profit from undervolting on this benchmark.
	if abs.EDPSaving() <= 0.05 {
		t.Fatalf("ABS EDP saving %v too small", abs.EDPSaving())
	}
}

func TestBestUnderBudget(t *testing.T) {
	c := Curve{Points: []Point{
		{VDD: 1.10, PerfOverhead: 0, EDP: 100},
		{VDD: 1.04, PerfOverhead: 0.02, EDP: 80},
		{VDD: 0.97, PerfOverhead: 0.12, EDP: 70},
	}}
	if p := c.BestUnder(0.05); p.VDD != 1.04 {
		t.Fatalf("BestUnder(5%%) picked %v", p.VDD)
	}
	if p := c.BestUnder(0.20); p.VDD != 0.97 {
		t.Fatalf("BestUnder(20%%) picked %v", p.VDD)
	}
	if p := c.BestUnder(0); p.VDD != 1.10 {
		t.Fatalf("BestUnder(0) picked %v", p.VDD)
	}
}

func TestEmptyCurve(t *testing.T) {
	var c Curve
	if c.Best() != (Point{}) || c.BestUnder(1) != (Point{}) || c.EDPSaving() != 0 {
		t.Fatal("empty curve must degrade gracefully")
	}
}
