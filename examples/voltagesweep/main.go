// voltagesweep explores the trade the paper's introduction motivates:
// "microprocessors can operate at a tighter frequency, where predictable
// errors frequently occur and are tolerated with minimal performance loss."
// It sweeps the supply voltage from the fault-free nominal point down
// through the paper's two faulty environments and prints, per scheme, the
// fault rate and the performance overhead — showing where stall-based
// tolerance becomes expensive while violation-aware scheduling stays flat.
//
//	go run ./examples/voltagesweep
//	go run ./examples/voltagesweep gcc
package main

import (
	"fmt"
	"log"
	"os"

	"tvsched"
)

func main() {
	bench := "bzip2"
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}
	const insts = 150000

	base, err := tvsched.Run(tvsched.Config{
		Benchmark: bench, Scheme: tvsched.ABS, VDD: tvsched.VNominal, Instructions: insts,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: fault-free IPC %.3f at %.2fV\n\n", bench, base.IPC, tvsched.VNominal)
	fmt.Printf("%-7s %7s | %14s %14s %14s\n", "VDD", "FR%", "EP ovhd", "ABS ovhd", "Razor ovhd")

	for _, vdd := range []float64{1.08, 1.06, tvsched.VLowFault, 1.01, 0.99, tvsched.VHighFault} {
		var fr float64
		ov := map[tvsched.Scheme]float64{}
		for _, s := range []tvsched.Scheme{tvsched.EP, tvsched.ABS, tvsched.Razor} {
			res, err := tvsched.Run(tvsched.Config{
				Benchmark: bench, Scheme: s, VDD: vdd, Instructions: insts,
			})
			if err != nil {
				log.Fatal(err)
			}
			fr = res.FaultRate
			o := base.IPC/res.IPC - 1
			if o < 0 {
				o = 0
			}
			ov[s] = o
		}
		fmt.Printf("%-7.2f %7.2f | %13.2f%% %13.2f%% %13.2f%%\n",
			vdd, 100*fr, 100*ov[tvsched.EP], 100*ov[tvsched.ABS], 100*ov[tvsched.Razor])
	}
	fmt.Println("\nAs voltage drops the fault rate climbs; EP and Razor overheads climb")
	fmt.Println("with it while violation-aware scheduling absorbs nearly all of it —")
	fmt.Println("the headroom that lets a core run at a tighter operating point.")
}
