// operatingpoint quantifies the claim that motivates the whole paper:
// "Enabled by our violation aware scheduling techniques, microprocessors can
// operate at a tighter [operating point], where predictable errors
// frequently occur and are tolerated with minimal performance loss."
//
// It characterizes one benchmark across a supply-voltage grid under Razor,
// EP and ABS, scales energy with voltage, and reports each scheme's
// energy-optimal operating point. Violation-aware scheduling keeps the
// overhead slope flat, so its optimum sits at a markedly lower voltage and
// larger energy-delay saving.
//
//	go run ./examples/operatingpoint
//	go run ./examples/operatingpoint gcc
package main

import (
	"fmt"
	"log"
	"os"

	"tvsched/internal/adapt"
	"tvsched/internal/core"
	"tvsched/internal/experiments"
)

func main() {
	bench := "bzip2"
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}
	cfg := experiments.Config{Insts: 150000, Warmup: 40000, Seed: 1, Parallel: true}
	grid := adapt.DefaultGrid()

	fmt.Printf("%s: operating-point characterization (energy scaled with VDD)\n\n", bench)
	for _, scheme := range []core.Scheme{core.Razor, core.EP, core.ABS} {
		curve, err := adapt.Characterize(bench, scheme, grid, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("— %v —\n", scheme)
		fmt.Printf("%8s %8s %8s %12s %14s\n", "VDD", "IPC", "FR%", "perf ovhd", "EDP (norm)")
		nominal := curve.Points[0].EDP
		for _, p := range curve.Points {
			marker := " "
			if p == curve.Best() {
				marker = "*"
			}
			fmt.Printf("%8.3f %8.3f %8.2f %11.2f%% %13.3f%s\n",
				p.VDD, p.IPC, 100*p.FaultRate, 100*p.PerfOverhead, p.EDP/nominal, marker)
		}
		best := curve.Best()
		fmt.Printf("best: %.3fV, EDP saving %.1f%% vs nominal\n\n",
			best.VDD, 100*curve.EDPSaving())
	}
	fmt.Println("(*) energy-optimal point. The flatter a scheme's overhead slope,")
	fmt.Println("the further down the voltage axis its optimum moves — the headroom")
	fmt.Println("violation-aware scheduling buys.")
}
