// dvfs runs the closed-loop error-rate-driven voltage governor: the online
// realization of the paper's motivation that a violation-tolerant core can
// operate at a tighter point. Starting from the fault-free nominal supply,
// the governor walks the voltage down until the observed violation rate
// enters its target band, then holds — while violation-aware scheduling
// keeps IPC essentially flat the whole way down.
//
//	go run ./examples/dvfs
package main

import (
	"fmt"
	"log"

	"tvsched/internal/core"
	"tvsched/internal/dvfs"
	"tvsched/internal/fault"
	"tvsched/internal/pipeline"
	"tvsched/internal/workload"
)

func main() {
	prof, ok := workload.ByName("bzip2")
	if !ok {
		log.Fatal("profile missing")
	}
	gen, err := workload.NewGenerator(prof, 1)
	if err != nil {
		log.Fatal(err)
	}
	cfg := pipeline.DefaultConfig()
	cfg.Scheme = core.ABS
	cfg.MispredictRate = prof.MispredictRate
	fc := fault.DefaultConfig(1)
	fc.Bias = prof.FaultBias
	p, err := pipeline.New(cfg, gen, fault.New(fc), fault.VNominal)
	if err != nil {
		log.Fatal(err)
	}
	p.PrefillData(gen.WarmRegion())
	if err := p.Warmup(30000); err != nil {
		log.Fatal(err)
	}

	pol := dvfs.DefaultPolicy()
	pol.TargetLo, pol.TargetHi = 0.02, 0.05
	g, err := dvfs.New(p, fault.VNominal, pol)
	if err != nil {
		log.Fatal(err)
	}
	trace, _, err := g.Run(30)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("bzip2 under ABS, error-rate-driven DVS (target band 2-5% violations)")
	fmt.Printf("%8s %8s %8s %8s\n", "window", "VDD", "FR%", "IPC")
	for _, s := range trace {
		if s.Window%2 == 0 { // print every other window
			fmt.Printf("%8d %8.3f %8.2f %8.3f\n", s.Window, s.VDD, 100*s.FaultRate, s.IPC)
		}
	}
	fmt.Printf("\nsettled at %.3fV (started 1.100V) with IPC within noise of fault-free —\n",
		dvfs.Settled(trace, 5))
	fmt.Println("the undervolting headroom violation-aware scheduling buys at runtime.")
}
