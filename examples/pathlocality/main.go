// pathlocality demonstrates the property the whole paper rests on (§S1):
// dynamic instances of the same static instruction sensitize strikingly
// similar logic paths, which is why a PC-indexed predictor can see timing
// violations coming several cycles early. It runs the gate-level
// sensitized-path study on the synthesized components and then shows the
// consequence at the architecture level: per-PC fault behaviour is nearly
// deterministic, so TEP coverage is high.
//
//	go run ./examples/pathlocality
package main

import (
	"fmt"
	"log"

	"tvsched"
	"tvsched/internal/sensitize"
)

func main() {
	// Circuit level: |φ|/|ψ| commonality of sensitized gates across dynamic
	// instances of the same static PC (Figure 7).
	fmt.Println("Sensitized-path commonality (gate level, |φ|/|ψ|):")
	opt := sensitize.DefaultOptions()
	results, avg := sensitize.MeasureAll(opt)
	fmt.Printf("%-10s", "")
	for c := sensitize.CompIQSelect; c < sensitize.NumComponents; c++ {
		fmt.Printf(" %12s", c)
	}
	fmt.Println()
	for _, prof := range sensitize.SPEC2000() {
		fmt.Printf("%-10s", prof.Name)
		for c := sensitize.CompIQSelect; c < sensitize.NumComponents; c++ {
			for _, r := range results {
				if r.Benchmark == prof.Name && r.Component == c {
					fmt.Printf(" %12.3f", r.Commonality)
				}
			}
		}
		fmt.Println()
	}
	fmt.Printf("%-10s", "average")
	for c := sensitize.CompIQSelect; c < sensitize.NumComponents; c++ {
		fmt.Printf(" %12.3f", avg[c])
	}
	fmt.Println()

	// Architecture level: that locality is what the TEP converts into
	// early, accurate predictions.
	fmt.Println("\nConsequence at the architecture level (0.97V, ABS):")
	fmt.Printf("%-12s %10s %12s\n", "benchmark", "FR%", "TEP coverage")
	for _, bench := range []string{"bzip2", "sjeng", "mcf"} {
		res, err := tvsched.Run(tvsched.Config{
			Benchmark:    bench,
			Scheme:       tvsched.ABS,
			VDD:          tvsched.VHighFault,
			Instructions: 120000,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %9.2f%% %11.1f%%\n", bench, 100*res.FaultRate, 100*res.Coverage)
	}
	fmt.Println("\nHigh commonality at the gate level is what makes per-PC timing")
	fmt.Println("violations repeatable — and hence predictable — at the pipe level.")
}
