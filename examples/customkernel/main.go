// customkernel drives the pipeline model with hand-written assembly instead
// of the synthetic workload profiles, using the library's mini-ISA. Two
// kernels bracket the slack spectrum the paper's results depend on: a serial
// pointer chase (no slack — every violated cycle shows) and an unrolled
// streaming sum (abundant slack — violations vanish into the schedule).
//
//	go run ./examples/customkernel
package main

import (
	"fmt"
	"log"

	"tvsched"
)

// chase follows a linked list: every load's address depends on the previous
// load. This is the worst case for any per-instruction delay.
const chase = `
    li  r1, 0x100000      ; list head
walk:
    ld  r1, 0(r1)         ; p = *p
    ld  r1, 0(r1)
    ld  r1, 0(r1)
    ld  r1, 0(r1)
    ld  r1, 0(r1)
    ld  r1, 0(r1)
    ld  r1, 0(r1)
    ld  r1, 0(r1)
    bne r1, r0, walk
    halt
`

// stream sums four independent strided arrays; the machine can always find
// work while one load waits, so confined +1-cycle delays disappear.
const stream = `
    li  r1, 0x200000
    li  r2, 0x300000
    li  r3, 0x400000
    li  r4, 0x500000
    li  r9, 0            ; i
    li  r10, 100000      ; n
loop:
    ld  r5, 0(r1)
    ld  r6, 0(r2)
    ld  r7, 0(r3)
    ld  r8, 0(r4)
    add r11, r11, r5
    add r12, r12, r6
    add r13, r13, r7
    add r14, r14, r8
    addi r1, r1, 8
    addi r2, r2, 8
    addi r3, r3, 8
    addi r4, r4, 8
    addi r9, r9, 1
    blt r9, r10, loop
    halt
`

func run(name, src string, init func(*tvsched.AsmMachine)) {
	kinds := []struct {
		label  string
		scheme tvsched.Scheme
		vdd    float64
	}{
		{"fault-free @1.10V", tvsched.ABS, tvsched.VNominal},
		{"EP         @0.97V", tvsched.EP, tvsched.VHighFault},
		{"ABS        @0.97V", tvsched.ABS, tvsched.VHighFault},
	}
	var base float64
	for _, k := range kinds {
		res, err := tvsched.RunAsm(tvsched.Config{
			Scheme:       k.scheme,
			VDD:          k.vdd,
			Instructions: 120000,
			Warmup:       30000,
			// Small kernels have few static PCs; raise the susceptibility
			// so some of them land in the fault-prone tail.
			FaultBias: 6,
		}, src, init)
		if err != nil {
			log.Fatal(err)
		}
		if base == 0 {
			base = res.IPC
		}
		ov := 100 * (base/res.IPC - 1)
		if ov < 0 {
			ov = 0
		}
		fmt.Printf("  %-18s IPC %6.3f   FR %5.2f%%   overhead %5.2f%%\n",
			k.label, res.IPC, 100*res.FaultRate, ov)
	}
	fmt.Println()
}

func main() {
	fmt.Println("pointer chase (serial — zero slack):")
	run("chase", chase, func(m *tvsched.AsmMachine) {
		// Build a 448-node circular linked list with a 64-byte stride
		// (28KB: L1-resident, so the chain speed is dependence-bound).
		const head, stride, nodes = 0x100000, 64, 448
		for i := 0; i < nodes; i++ {
			next := uint64(head + (i+1)%nodes*stride)
			m.Poke(uint64(head+i*stride), next)
		}
		m.SetReg(1, head)
	})

	fmt.Println("streaming sum (independent — abundant slack):")
	run("stream", stream, nil)

	fmt.Println("Error Padding stalls the whole machine once per predicted violation,")
	fmt.Println("so its overhead tracks FR x IPC on any kernel. Violation-aware")
	fmt.Println("scheduling confines each violation to one issue slot — nearly free")
	fmt.Println("even on the zero-slack pointer chase.")
}
