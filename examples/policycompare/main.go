// policycompare reproduces the paper's central comparison on one benchmark:
// all five timing-error handling schemes side by side in a faulty
// environment, with overheads relative to fault-free execution — the
// per-benchmark content of Table 1 and Figures 4/8.
//
//	go run ./examples/policycompare            # sjeng at 0.97 V
//	go run ./examples/policycompare mcf 1.04
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"

	"tvsched"
)

func main() {
	bench := "sjeng"
	vdd := tvsched.VHighFault
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}
	if len(os.Args) > 2 {
		v, err := strconv.ParseFloat(os.Args[2], 64)
		if err != nil {
			log.Fatalf("bad voltage %q: %v", os.Args[2], err)
		}
		vdd = v
	}

	schemes := []tvsched.Scheme{tvsched.Razor, tvsched.EP, tvsched.ABS, tvsched.FFS, tvsched.CDS}
	cs, err := tvsched.Compare(tvsched.Config{
		Benchmark:    bench,
		VDD:          vdd,
		Instructions: 200000,
	}, schemes)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s @ %.2fV — overheads vs fault-free execution\n", bench, vdd)
	fmt.Printf("%-6s %8s %12s %12s %14s\n", "scheme", "IPC", "perf ovhd", "ED ovhd", "vs EP (perf)")
	var epOv float64
	for _, c := range cs {
		if c.Scheme == tvsched.EP {
			epOv = c.PerfOverhead
		}
	}
	for _, c := range cs {
		rel := "-"
		if epOv > 0 && c.Scheme != tvsched.Razor && c.Scheme != tvsched.EP {
			rel = fmt.Sprintf("%.2fx", c.PerfOverhead/epOv)
		}
		fmt.Printf("%-6v %8.3f %11.2f%% %11.2f%% %14s\n",
			c.Scheme, c.IPC, 100*c.PerfOverhead, 100*c.EDOverhead, rel)
	}
	fmt.Println("\nThe violation-aware schemes (ABS/FFS/CDS) confine each predicted")
	fmt.Println("violation to the faulty instruction and its dependents; EP stalls the")
	fmt.Println("whole pipeline per violation and Razor replays every one of them.")
}
