// Quickstart: simulate one benchmark under violation-aware scheduling in the
// paper's high-fault-rate environment and print the headline numbers.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"tvsched"
)

func main() {
	// Run bzip2 at 0.97 V — the paper's high-fault-rate environment — under
	// age-based violation-aware scheduling (ABS).
	res, err := tvsched.Run(tvsched.Config{
		Benchmark:    "bzip2",
		Scheme:       tvsched.ABS,
		VDD:          tvsched.VHighFault,
		Instructions: 200000,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("bzip2 @ 0.97V under ABS\n")
	fmt.Printf("  IPC:              %.3f\n", res.IPC)
	fmt.Printf("  fault rate:       %.2f%% of committed instructions\n", 100*res.FaultRate)
	fmt.Printf("  TEP coverage:     %.1f%% of violations predicted early\n", 100*res.Coverage)
	fmt.Printf("  confined events:  %d (penalty restricted to the faulty instruction)\n",
		res.Stats.ConfinedEvents)
	fmt.Printf("  replays:          %d (unpredicted violations)\n", res.Stats.Replays)
	fmt.Printf("  energy/instr:     %.1f pJ\n", res.Energy.EPI())

	// The same machine, fault-free, for reference.
	base, err := tvsched.Run(tvsched.Config{
		Benchmark:    "bzip2",
		Scheme:       tvsched.ABS,
		VDD:          tvsched.VNominal,
		Instructions: 200000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfault-free IPC %.3f -> overhead of tolerating a %.1f%% fault rate: %.2f%%\n",
		base.IPC, 100*res.FaultRate, 100*(base.IPC/res.IPC-1))
}
