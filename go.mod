module tvsched

go 1.22
