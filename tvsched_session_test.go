package tvsched_test

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"tvsched"
	"tvsched/internal/experiments"
	"tvsched/internal/obs"
)

// report renders the run-report/v1 JSON a tool like tvsim would emit for the
// result, so wrapper-vs-session identity is checked on the wire bytes the
// checklist cares about, not just on in-memory structs.
func report(t *testing.T, cfg tvsched.Config, res tvsched.Result) []byte {
	t.Helper()
	rep := &obs.RunReport{
		Tool:         "test",
		Benchmark:    cfg.Benchmark,
		Scheme:       cfg.Scheme.String(),
		VDD:          cfg.VDD,
		Seed:         cfg.Seed,
		Instructions: res.Stats.Committed,
		Cycles:       res.Stats.Cycles,
		IPC:          res.Stats.IPC(),
		TEP:          experiments.TEPAccuracyFrom(&res.Stats),
	}
	var b bytes.Buffer
	if err := rep.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// TestSessionWrapperIdentity pins the API-redesign contract: the deprecated
// free functions are thin wrappers over Session and their output — down to
// run-report/v1 bytes — is identical to driving the Session directly.
func TestSessionWrapperIdentity(t *testing.T) {
	cfg := tvsched.Config{Benchmark: "sjeng", Scheme: tvsched.FFS, VDD: tvsched.VHighFault,
		Instructions: 60000, Seed: 5}
	old, err := tvsched.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	s, err := tvsched.NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Warmup(ctx); err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(ctx, tvsched.RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if old != res {
		t.Fatalf("deprecated Run diverged from Session:\n  %+v\n  %+v", old, res)
	}
	norm := cfg.Normalized()
	if o, n := report(t, norm, old), report(t, norm, res); !bytes.Equal(o, n) {
		t.Fatalf("run-report bytes differ:\n%s\n%s", o, n)
	}
}

// TestSessionCheckpointLifecycle exercises the full lifecycle the serving
// layer builds on: a neutral warmup's snapshot restores into a fresh session
// of a different scheme and reproduces that scheme's run exactly.
func TestSessionCheckpointLifecycle(t *testing.T) {
	ctx := context.Background()
	cfg := tvsched.Config{Benchmark: "bzip2", Scheme: tvsched.CDS, VDD: tvsched.VHighFault,
		Instructions: 50000, Seed: 9}

	donor, err := tvsched.NewSession(tvsched.Config{Benchmark: cfg.Benchmark, Scheme: tvsched.ABS,
		VDD: tvsched.VLowFault, Instructions: cfg.Instructions, Seed: cfg.Seed})
	if err != nil {
		t.Fatal(err)
	}
	if err := donor.WarmupNeutral(ctx); err != nil {
		t.Fatal(err)
	}
	snap, err := donor.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Key == "" || len(snap.Data) == 0 {
		t.Fatalf("empty snapshot: %+v", snap)
	}

	// The warm key is scheme- and VDD-independent: the donor (ABS at the low
	// supply) and the target (CDS at the high supply) share it.
	native, err := tvsched.NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if native.WarmKey() != snap.Key {
		t.Fatal("warm key differs across (scheme, VDD) cells")
	}
	if err := native.WarmupNeutral(ctx); err != nil {
		t.Fatal(err)
	}
	want, err := native.Run(ctx, tvsched.RunOpts{})
	if err != nil {
		t.Fatal(err)
	}

	restored, err := tvsched.NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.Restore(snap); err != nil {
		t.Fatal(err)
	}
	got, err := restored.Run(ctx, tvsched.RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("restored run diverged from natively warmed run:\n  %+v\n  %+v", got, want)
	}
}

// TestSessionMisuse pins the lifecycle refusals.
func TestSessionMisuse(t *testing.T) {
	ctx := context.Background()
	cfg := tvsched.Config{Benchmark: "bzip2", Instructions: 20000, VDD: tvsched.VHighFault, Seed: 2}

	s, err := tvsched.NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Snapshot(); err == nil {
		t.Fatal("snapshot before warmup accepted")
	}
	// A legacy warmup at a faulty supply is scheme/VDD-dependent state:
	// snapshot must refuse it.
	if err := s.Warmup(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Snapshot(); err == nil {
		t.Fatal("snapshot of non-neutral warm state accepted")
	}
	if err := s.Restore(&tvsched.Snapshot{}); err == nil {
		t.Fatal("restore into a warmed session accepted")
	}

	// Key mismatch: a snapshot from another seed must be refused by Restore
	// before the machine even parses the bytes.
	donor, err := tvsched.NewSession(tvsched.Config{Benchmark: "bzip2", Instructions: 20000,
		VDD: tvsched.VNominal, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := donor.Warmup(ctx); err != nil { // nominal supply ⇒ neutral
		t.Fatal(err)
	}
	snap, err := donor.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	target, err := tvsched.NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := target.Restore(snap); !errors.Is(err, tvsched.ErrSnapshotUnsupported) {
		t.Fatalf("mismatched warm key: got %v", err)
	}
}
