package tvsched

import (
	"encoding/json"
	"testing"
)

// TestCanonicalJSONGolden pins the canonical byte layout and its SHA-256.
// The digest is the content address of a simulation: the serving layer's
// result cache, its singleflight table, and any stored artifacts key on it.
// If this test fails you have made a breaking schema change — every digest
// ever produced is invalidated — so bump deliberately, never silently.
func TestCanonicalJSONGolden(t *testing.T) {
	cases := []struct {
		name   string
		cfg    Config
		json   string
		digest string
	}{
		{
			name:   "zero config takes all defaults",
			cfg:    Config{},
			json:   `{"benchmark":"bzip2","fault_bias":1,"instructions":300000,"scheme":"Razor","seed":1,"vdd":1.1,"warmup":75000}`,
			digest: "85d657b93a264a6c2ac8808b0f4313698dfdcb3e2bce67e3d98105fb26bde651",
		},
		{
			name: "fully specified",
			cfg: Config{Benchmark: "sjeng", Scheme: CDS, VDD: VHighFault,
				Instructions: 20000, Warmup: 5000, Seed: 42, FaultBias: 1.5},
			json:   `{"benchmark":"sjeng","fault_bias":1.5,"instructions":20000,"scheme":"CDS","seed":42,"vdd":0.97,"warmup":5000}`,
			digest: "57c4ebe3f56574541b7eb0e156aeec6560c9aca379d7c3d389284827a5687ade",
		},
		{
			name:   "partial, defaults fill the rest",
			cfg:    Config{Benchmark: "mcf", Scheme: EP, VDD: VLowFault, Instructions: 300000, Seed: 7},
			json:   `{"benchmark":"mcf","fault_bias":1,"instructions":300000,"scheme":"EP","seed":7,"vdd":1.04,"warmup":75000}`,
			digest: "809144844cea0637428877bb9ed546c6f334f2b45bab5bd1a3108a00ee51276d",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := string(c.cfg.CanonicalJSON())
			if got != c.json {
				t.Errorf("canonical bytes drifted:\n got %s\nwant %s", got, c.json)
			}
			if d := c.cfg.Digest(); d != c.digest {
				t.Errorf("digest drifted:\n got %s\nwant %s", d, c.digest)
			}
			if !json.Valid([]byte(got)) {
				t.Errorf("canonical form is not valid JSON: %s", got)
			}
		})
	}
}

// TestCanonicalJSONIdentity checks the content-address contract from the
// other side: configs that describe the same simulation digest identically
// (omitted fields versus explicit defaults), and machinery fields do not
// leak into the identity.
func TestCanonicalJSONIdentity(t *testing.T) {
	implicit := Config{Benchmark: "bzip2"}
	explicit := implicit.Normalized()
	if implicit.Digest() != explicit.Digest() {
		t.Errorf("explicit defaults changed the digest: %s vs %s",
			implicit.Digest(), explicit.Digest())
	}
	withMachinery := explicit
	withMachinery.Debug = true
	withMachinery.Observer = ObserverFunc(func(Event) {})
	if withMachinery.Digest() != explicit.Digest() {
		t.Error("Observer/Debug leaked into the digest")
	}
	other := explicit
	other.Seed = 2
	if other.Digest() == explicit.Digest() {
		t.Error("seed change did not change the digest")
	}
}
