package tvsched_test

// One benchmark per table and figure of the paper. Each bench regenerates
// its artifact end-to-end (workload generation, pipeline simulation, energy
// accounting, or gate-level analysis) and reports the headline quantity as a
// custom metric, so `go test -bench=.` doubles as a compact reproduction
// run. cmd/tvbench prints the full rows; EXPERIMENTS.md records the
// paper-vs-measured comparison at full scale.

import (
	"context"
	"fmt"
	"testing"
	"time"

	"tvsched"
	"tvsched/internal/core"
	"tvsched/internal/experiments"
	"tvsched/internal/fault"
	"tvsched/internal/pipeline"
	"tvsched/internal/sensitize"
	"tvsched/internal/ssta"
	"tvsched/internal/tep"
	"tvsched/internal/workload"
)

// benchCfg sizes the architectural benches: large enough for stable shapes,
// small enough that the full bench suite completes in minutes.
func benchCfg() experiments.Config {
	return experiments.Config{Insts: 60000, Warmup: 20000, Seed: 1, Parallel: true}
}

// BenchmarkTable1 regenerates Table 1: per-benchmark fault rates and
// Razor/EP overheads in both faulty environments.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(benchCfg())
		rows, err := s.Table1()
		if err != nil {
			b.Fatal(err)
		}
		var avgEP float64
		for _, r := range rows {
			avgEP += r.EPHigh.Perf
		}
		b.ReportMetric(avgEP/float64(len(rows)), "avg-EP-ov-%@0.97V")
	}
}

func benchFigure(b *testing.B, fn func(*experiments.Suite) (experiments.FigureData, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(benchCfg())
		fig, err := fn(s)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(fig.Reduction(), "overhead-reduction-%")
	}
}

// BenchmarkFigure4 regenerates Figure 4: performance overhead of ABS/FFS/CDS
// normalized to EP at 1.04 V (paper: 87% average reduction).
func BenchmarkFigure4(b *testing.B) {
	benchFigure(b, (*experiments.Suite).Figure4)
}

// BenchmarkFigure5 regenerates Figure 5: ED overhead normalized to EP at
// 1.04 V (paper: 82% average reduction).
func BenchmarkFigure5(b *testing.B) {
	benchFigure(b, (*experiments.Suite).Figure5)
}

// BenchmarkFigure8 regenerates Figure 8: performance overhead normalized to
// EP at 0.97 V (paper: 88% average reduction).
func BenchmarkFigure8(b *testing.B) {
	benchFigure(b, (*experiments.Suite).Figure8)
}

// BenchmarkFigure9 regenerates Figure 9: ED overhead normalized to EP at
// 0.97 V (paper: 83% average reduction).
func BenchmarkFigure9(b *testing.B) {
	benchFigure(b, (*experiments.Suite).Figure9)
}

// BenchmarkTable2 regenerates Table 2: area/power overhead of the VTE from
// the structural scheduler and core model.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table2()
		b.ReportMetric(rows[2].SchedArea, "CDS-sched-area-%")
	}
}

// BenchmarkTable3 regenerates Table 3: gate counts and logic depths of the
// four synthesized components.
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table3()
		b.ReportMetric(float64(rows[1].Gates), "alu-gates")
	}
}

// BenchmarkFigure7 regenerates Figure 7: sensitized-path commonality of the
// six SPEC2000 benchmarks on the four components (paper averages
// 87.4/89/92.4/90%).
func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := experiments.Figure7(1)
		b.ReportMetric(100*d.Averages[sensitize.CompALU], "ALU-commonality-%")
	}
}

// BenchmarkAblationCT sweeps the CDL criticality threshold around the
// paper's best value (CT=8, §3.5.2) on the CDS scheme.
func BenchmarkAblationCT(b *testing.B) {
	prof, _ := workload.ByName("sjeng")
	for _, ct := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("CT%d", ct), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				gen, err := workload.NewGenerator(prof, 1)
				if err != nil {
					b.Fatal(err)
				}
				cfg := pipeline.DefaultConfig()
				cfg.Scheme = core.CDS
				cfg.CT = ct
				cfg.MispredictRate = prof.MispredictRate
				fc := fault.DefaultConfig(1)
				fc.Bias = prof.FaultBias
				p, err := pipeline.New(cfg, gen, fault.New(fc), fault.VHighFault)
				if err != nil {
					b.Fatal(err)
				}
				p.PrefillData(gen.WarmRegion())
				if err := p.Warmup(15000); err != nil {
					b.Fatal(err)
				}
				st, err := p.Run(50000)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(st.IPC(), "IPC")
				b.ReportMetric(float64(st.CriticalMarks), "critical-marks")
			}
		})
	}
}

// BenchmarkAblationTEP sweeps the TEP geometry: coverage is what the
// violation-aware schemes live on, and both capacity (aliasing) and history
// bits (contexts per PC) move it.
func BenchmarkAblationTEP(b *testing.B) {
	prof, _ := workload.ByName("gcc")
	cases := []struct {
		name string
		cfg  tep.Config
	}{
		{"256x2", tep.Config{Entries: 256, HistoryBits: 2}},
		{"1024x4", tep.Config{Entries: 1024, HistoryBits: 4}},
		{"4096x2", tep.Config{Entries: 4096, HistoryBits: 2}},
		{"4096x8", tep.Config{Entries: 4096, HistoryBits: 8}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				gen, err := workload.NewGenerator(prof, 1)
				if err != nil {
					b.Fatal(err)
				}
				cfg := pipeline.DefaultConfig()
				cfg.Scheme = core.ABS
				cfg.TEP = tc.cfg
				cfg.MispredictRate = prof.MispredictRate
				fc := fault.DefaultConfig(1)
				fc.Bias = prof.FaultBias
				p, err := pipeline.New(cfg, gen, fault.New(fc), fault.VHighFault)
				if err != nil {
					b.Fatal(err)
				}
				p.PrefillData(gen.WarmRegion())
				if err := p.Warmup(15000); err != nil {
					b.Fatal(err)
				}
				st, err := p.Run(50000)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(100*st.Coverage(), "coverage-%")
			}
		})
	}
}

// BenchmarkPipelineThroughput measures raw simulator speed (instructions
// per wall-clock second drive how large a phase is practical).
func BenchmarkPipelineThroughput(b *testing.B) {
	prof, _ := workload.ByName("bzip2")
	gen, _ := workload.NewGenerator(prof, 1)
	cfg := pipeline.DefaultConfig()
	cfg.MispredictRate = prof.MispredictRate
	p, _ := pipeline.New(cfg, gen, fault.New(fault.DefaultConfig(1)), fault.VHighFault)
	b.ResetTimer()
	if _, err := p.Run(uint64(b.N)); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkObserverOverhead quantifies the observability layer's cost on the
// simulator hot loop in a fault-heavy run: "disabled" is the shipping
// default (nil observer, the fast path every emission site guards with),
// "noop" pays event construction and an indirect call per event, "metrics"
// additionally aggregates into the registry, and "chrometrace" records for
// export.
func BenchmarkObserverOverhead(b *testing.B) {
	cases := []struct {
		name string
		mk   func() tvsched.Observer
	}{
		{"disabled", func() tvsched.Observer { return nil }},
		{"noop", func() tvsched.Observer { return tvsched.ObserverFunc(func(tvsched.Event) {}) }},
		{"metrics", func() tvsched.Observer { return tvsched.NewMetrics() }},
		{"chrometrace", func() tvsched.Observer { return tvsched.NewChromeTracer() }},
	}
	prof, _ := workload.ByName("bzip2")
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			gen, err := workload.NewGenerator(prof, 1)
			if err != nil {
				b.Fatal(err)
			}
			cfg := pipeline.DefaultConfig()
			cfg.MispredictRate = prof.MispredictRate
			cfg.Observer = tc.mk()
			fc := fault.DefaultConfig(1)
			fc.Bias = prof.FaultBias
			p, err := pipeline.New(cfg, gen, fault.New(fc), fault.VHighFault)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			if _, err := p.Run(uint64(b.N)); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// TestObserverDisabledOverheadGuard pins the zero-overhead-when-disabled
// contract of internal/obs: a run with no observer must cost no more than
// the same run with a no-op observer attached, which executes a strict
// superset of its work (every emission site constructs an Event and makes
// an indirect call). If the nil fast path ever stops short-circuiting that
// work, the two times converge and the budget below trips. Min-of-trials
// filters scheduler noise; 2% is the design budget (DESIGN.md).
func TestObserverDisabledOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive in -short mode")
	}
	prof, _ := workload.ByName("bzip2")
	once := func(o tvsched.Observer) time.Duration {
		gen, err := workload.NewGenerator(prof, 1)
		if err != nil {
			t.Fatal(err)
		}
		cfg := pipeline.DefaultConfig()
		cfg.MispredictRate = prof.MispredictRate
		cfg.Observer = o
		fc := fault.DefaultConfig(1)
		fc.Bias = prof.FaultBias
		p, err := pipeline.New(cfg, gen, fault.New(fc), fault.VHighFault)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Warmup(5000); err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		if _, err := p.Run(40000); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	noop := tvsched.ObserverFunc(func(tvsched.Event) {})
	disabled, attached := time.Duration(1<<62), time.Duration(1<<62)
	for trial := 0; trial < 5; trial++ {
		if d := once(nil); d < disabled {
			disabled = d
		}
		if d := once(noop); d < attached {
			attached = d
		}
	}
	if float64(disabled) > 1.02*float64(attached)+float64(2*time.Millisecond) {
		t.Errorf("disabled observer run %v slower than instrumented run %v: nil fast path broken",
			disabled, attached)
	}
}

// BenchmarkSSTA measures the Monte-Carlo timing analysis on the largest
// component.
func BenchmarkSSTA(b *testing.B) {
	nl := sensitize.CompALU.Netlist()
	for i := 0; i < b.N; i++ {
		r := ssta.Analyze(nl, ssta.DefaultVariation(), fault.VHighFault, 10, uint64(i))
		_ = r.MuPlus2Sigma()
	}
}

// BenchmarkAblationReplay compares the two unpredicted-violation recovery
// mechanisms (DESIGN.md §7): selective RazorII-style in-place replay vs
// architectural flush-and-refetch, under Razor where every violation
// replays.
func BenchmarkAblationReplay(b *testing.B) {
	for _, full := range []bool{false, true} {
		name := "selective"
		if full {
			name = "fullflush"
		}
		b.Run(name, func(b *testing.B) {
			prof, _ := workload.ByName("bzip2")
			for i := 0; i < b.N; i++ {
				gen, err := workload.NewGenerator(prof, 1)
				if err != nil {
					b.Fatal(err)
				}
				cfg := pipeline.DefaultConfig()
				cfg.Scheme = core.Razor
				cfg.MispredictRate = prof.MispredictRate
				cfg.FullFlushReplay = full
				fc := fault.DefaultConfig(1)
				fc.Bias = prof.FaultBias
				p, err := pipeline.New(cfg, gen, fault.New(fc), fault.VHighFault)
				if err != nil {
					b.Fatal(err)
				}
				p.PrefillData(gen.WarmRegion())
				if err := p.Warmup(15000); err != nil {
					b.Fatal(err)
				}
				st, err := p.Run(50000)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(st.IPC(), "IPC")
				b.ReportMetric(float64(st.SquashedInsts), "squashed")
			}
		})
	}
}

// BenchmarkAblationWidth measures how the VTE's overhead reduction scales
// with machine width: narrower machines have less architectural slack to
// absorb confined violations, so the ABS-vs-EP gap should narrow on the
// little core and widen on the big one.
func BenchmarkAblationWidth(b *testing.B) {
	prof, _ := workload.ByName("bzip2")
	cfgs := []struct {
		name string
		cfg  pipeline.Config
	}{
		{"little2wide", pipeline.LittleConfig()},
		{"core1-4wide", pipeline.DefaultConfig()},
		{"big6wide", pipeline.BigConfig()},
	}
	for _, tc := range cfgs {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ipc := func(scheme core.Scheme, vdd float64) float64 {
					gen, err := workload.NewGenerator(prof, 1)
					if err != nil {
						b.Fatal(err)
					}
					cfg := tc.cfg
					cfg.Scheme = scheme
					cfg.MispredictRate = prof.MispredictRate
					fc := fault.DefaultConfig(1)
					fc.Bias = prof.FaultBias
					p, err := pipeline.New(cfg, gen, fault.New(fc), vdd)
					if err != nil {
						b.Fatal(err)
					}
					p.PrefillData(gen.WarmRegion())
					if err := p.Warmup(15000); err != nil {
						b.Fatal(err)
					}
					st, err := p.Run(50000)
					if err != nil {
						b.Fatal(err)
					}
					return st.IPC()
				}
				free := ipc(core.ABS, fault.VNominal)
				ep := free/ipc(core.EP, fault.VHighFault) - 1
				abs := free/ipc(core.ABS, fault.VHighFault) - 1
				if ep > 0 {
					b.ReportMetric(100*(1-abs/ep), "overhead-reduction-%")
				}
			}
		})
	}
}

// BenchmarkAblationPredictor compares the paper's table TEP against the
// perceptron extension inside the full pipeline, reporting end-to-end
// violation coverage.
func BenchmarkAblationPredictor(b *testing.B) {
	prof, _ := workload.ByName("gcc")
	cases := []struct {
		name string
		mk   func() tep.Predictor
	}{
		{"tableTEP", nil},
		{"perceptron", func() tep.Predictor { return tep.NewPerceptron(tep.DefaultPerceptronConfig()) }},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				gen, err := workload.NewGenerator(prof, 1)
				if err != nil {
					b.Fatal(err)
				}
				cfg := pipeline.DefaultConfig()
				cfg.Scheme = core.ABS
				cfg.MispredictRate = prof.MispredictRate
				if tc.mk != nil {
					cfg.NewPredictor = tc.mk
				}
				fc := fault.DefaultConfig(1)
				fc.Bias = prof.FaultBias
				p, err := pipeline.New(cfg, gen, fault.New(fc), fault.VHighFault)
				if err != nil {
					b.Fatal(err)
				}
				p.PrefillData(gen.WarmRegion())
				if err := p.Warmup(15000); err != nil {
					b.Fatal(err)
				}
				st, err := p.Run(50000)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(100*st.Coverage(), "coverage-%")
				b.ReportMetric(st.IPC(), "IPC")
			}
		})
	}
}

// sweepBenchCells is the cell grid of the checkpointed-sweep benches below:
// all five handling schemes at both faulty supplies over one benchmark and
// seed — the same geometry the served sweep bench (internal/serve, cmd/tvload
// -sweepbench) times at full scale, shrunk so the pair completes in seconds.
// Every cell shares one warm state, which is what makes a single checkpoint
// serve all ten.
func sweepBenchCells() []tvsched.Config {
	var cells []tvsched.Config
	for _, scheme := range []tvsched.Scheme{tvsched.Razor, tvsched.EP, tvsched.ABS, tvsched.FFS, tvsched.CDS} {
		for _, vdd := range []float64{tvsched.VLowFault, tvsched.VHighFault} {
			cells = append(cells, tvsched.Config{
				Benchmark:    "bzip2",
				Scheme:       scheme,
				VDD:          vdd,
				Warmup:       60000,
				Instructions: 4000,
				Seed:         1,
			})
		}
	}
	return cells
}

// BenchmarkSweepCold times a scheme×voltage sweep the pre-Session way: every
// cell pays its own neutral warmup before measuring. The warmup dominates by
// construction (60k warm / 4k measured), so this is the denominator of the
// checkpoint speedup EXPERIMENTS.md records.
func BenchmarkSweepCold(b *testing.B) {
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		for _, cfg := range sweepBenchCells() {
			sess, err := tvsched.NewSession(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if err := sess.WarmupNeutral(ctx); err != nil {
				b.Fatal(err)
			}
			if _, err := sess.Run(ctx, tvsched.RunOpts{}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkSweepWarm times the same sweep checkpointed: one donor session
// pays the neutral warmup and snapshots it, and every cell restores those
// bytes instead of warming — the served sweep path in miniature.
func BenchmarkSweepWarm(b *testing.B) {
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		cells := sweepBenchCells()
		donor, err := tvsched.NewSession(cells[0])
		if err != nil {
			b.Fatal(err)
		}
		if err := donor.WarmupNeutral(ctx); err != nil {
			b.Fatal(err)
		}
		snap, err := donor.Snapshot()
		if err != nil {
			b.Fatal(err)
		}
		for _, cfg := range cells {
			sess, err := tvsched.NewSession(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if err := sess.Restore(snap); err != nil {
				b.Fatal(err)
			}
			if _, err := sess.Run(ctx, tvsched.RunOpts{}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkCycleLoop times the observer-off simulator hot loop per committed
// instruction and reports per-cycle cost and the allocation count — the
// zero-alloc contract internal/pipeline/alloc_test.go pins shows up here as
// 0 allocs/op.
func BenchmarkCycleLoop(b *testing.B) {
	prof, _ := workload.ByName("bzip2")
	gen, err := workload.NewGenerator(prof, 1)
	if err != nil {
		b.Fatal(err)
	}
	cfg := pipeline.DefaultConfig()
	cfg.MispredictRate = prof.MispredictRate
	fc := fault.DefaultConfig(1)
	fc.Bias = prof.FaultBias
	p, err := pipeline.New(cfg, gen, fault.New(fc), fault.VHighFault)
	if err != nil {
		b.Fatal(err)
	}
	p.PrefillData(gen.WarmRegion())
	if err := p.Warmup(10000); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	st, err := p.Run(uint64(b.N))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(b.Elapsed())/float64(st.Cycles), "ns/cycle")
}
